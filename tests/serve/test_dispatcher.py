"""ServeDispatcher: correctness, coalescing, caching, containment.

The serving layer's promises (ISSUE 10), each pinned by a test here:
served values are bit-identical to a direct in-process summarize on the
same inputs; a repeat request is pure cache reads with zero compute and
zero generations; identical in-flight requests coalesce onto one future;
the bounded queue sheds load as :class:`ServeBusy`; malformed requests
fail fast as :class:`ServeError` without occupying queue space; and a
service restarting over a killed predecessor's root reaps its orphaned
spool staging directories.
"""

import threading

import pytest

from repro.core import make_generator, summarize
from repro.core.battery import _identity
from repro.obs import get_registry
from repro.serve import ServeBusy, ServeDispatcher, ServeError
from repro.stats.rng import derive_seed

N = 150
MODEL = "albert-barabasi"


def _counter(name):
    return get_registry().counter(name).value


@pytest.fixture(scope="module")
def dispatcher(tmp_path_factory):
    """One warm module-scoped service: tests share its pool and caches
    exactly the way real traffic shares a long-running server's."""
    d = ServeDispatcher(
        jobs=1, root=tmp_path_factory.mktemp("serve-root"), threads=2
    )
    yield d
    d.shutdown()


class TestSummarizeCorrectness:
    def test_values_bit_identical_to_direct_summarize(self, dispatcher):
        result = dispatcher.call("summarize", {"model": MODEL, "n": N, "seed": 3})
        graph = make_generator(MODEL).generate(N, seed=3)
        direct = summarize(graph, seed=3)
        assert result["values"] == direct.as_dict()

    def test_repeat_is_pure_cache_zero_compute(self, dispatcher):
        params = {"model": MODEL, "n": N, "seed": 4}
        first = dispatcher.call("summarize", params)
        assert first["generated"] == 1
        computed_before = _counter("serve.cells.computed")
        generations_before = _counter("serve.generations.computed")
        second = dispatcher.call("summarize", params)
        assert second["values"] == first["values"]
        assert second["generated"] == 0
        assert second["computed_groups"] == []
        assert set(second["cached_groups"]) == set(second["groups"])
        assert _counter("serve.cells.computed") == computed_before
        assert _counter("serve.generations.computed") == generations_before

    def test_group_subset_reuses_full_battery_cells(self, dispatcher):
        dispatcher.call("summarize", {"model": MODEL, "n": N, "seed": 3})
        result = dispatcher.call(
            "summarize", {"model": MODEL, "n": N, "seed": 3, "groups": "size,tail"}
        )
        assert result["cached_groups"] and not result["computed_groups"]
        assert "num_nodes" in result["values"]

    def test_replicate_addresses_battery_seed(self, dispatcher):
        result = dispatcher.call(
            "summarize", {"model": MODEL, "n": N, "replicate": 2}
        )
        generator = make_generator(MODEL)
        identity, plain = _identity(generator)
        expected = derive_seed("battery-unit", identity, plain, N, 17, 2)
        assert result["seed"] == expected

    def test_generate_then_summarize_shares_the_spool(self, dispatcher):
        spec = {"model": "waxman", "n": N, "seed": 9}
        first = dispatcher.call("generate", spec)
        assert first["num_nodes"] == N
        again = dispatcher.call("generate", spec)
        assert again["generated"] == 0
        assert again["fingerprint"] == first["fingerprint"]
        summary = dispatcher.call("summarize", spec)
        assert summary["generated"] == 0  # topology came from the spool

    def test_compare_scores_against_reference(self, dispatcher):
        result = dispatcher.call("compare", {"model": MODEL, "n": N, "seed": 3})
        assert result["score"] >= 0
        assert result["rows"]
        metrics = {row["metric"] for row in result["rows"]}
        assert "average_degree" in metrics


class TestCoalescing:
    def test_identical_inflight_requests_share_one_future(self, tmp_path):
        # start=False holds the queue undrained, so identical submits are
        # guaranteed to be concurrent — no timing luck involved.
        d = ServeDispatcher(
            jobs=1, root=tmp_path / "root", start=False, prewarm=False
        )
        try:
            params = {"model": MODEL, "n": N, "seed": 5}
            hits_before = _counter("serve.coalesce.hits")
            futures = [d.submit("summarize", params) for _ in range(4)]
            assert len({id(f) for f in futures}) == 1
            assert _counter("serve.coalesce.hits") - hits_before == 3
            d.start(1)
            results = [f.result(timeout=300) for f in futures]
            assert all(r == results[0] for r in results)
            assert results[0]["generated"] == 1
        finally:
            d.shutdown()

    def test_threaded_identical_load_coalesces(self, dispatcher):
        params = {"model": MODEL, "n": N, "seed": 6}
        hits_before = _counter("serve.coalesce.hits")
        barrier = threading.Barrier(4)
        results = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            value = dispatcher.call("summarize", params)
            with lock:
                results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        assert all(r["values"] == results[0]["values"] for r in results)
        assert _counter("serve.coalesce.hits") - hits_before >= 1

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        d = ServeDispatcher(
            jobs=1, root=tmp_path / "root", start=False, prewarm=False
        )
        try:
            a = d.submit("summarize", {"model": MODEL, "n": N, "seed": 1})
            b = d.submit("summarize", {"model": MODEL, "n": N, "seed": 2})
            assert a is not b
        finally:
            d.shutdown()


class TestLoadShedding:
    def test_queue_full_raises_serve_busy(self, tmp_path):
        d = ServeDispatcher(
            jobs=1, root=tmp_path / "root", queue_limit=1,
            start=False, prewarm=False,
        )
        try:
            d.submit("summarize", {"model": MODEL, "n": N, "seed": 1})
            rejected_before = _counter("serve.rejected")
            with pytest.raises(ServeBusy, match="queue full"):
                d.submit("summarize", {"model": MODEL, "n": N, "seed": 2})
            assert _counter("serve.rejected") - rejected_before == 1
        finally:
            d.shutdown()

    def test_rejected_request_does_not_stay_inflight(self, tmp_path):
        d = ServeDispatcher(
            jobs=1, root=tmp_path / "root", queue_limit=1,
            start=False, prewarm=False,
        )
        try:
            d.submit("summarize", {"model": MODEL, "n": N, "seed": 1})
            spec = {"model": MODEL, "n": N, "seed": 2}
            with pytest.raises(ServeBusy):
                d.submit("summarize", spec)
            # The rejected key must be gone: a later identical submit is a
            # fresh flight, not a coalesce onto a never-executed future.
            assert len(d._inflight) == 1
        finally:
            d.shutdown()


class TestValidation:
    @pytest.fixture(scope="class")
    def cold(self, tmp_path_factory):
        """Plan validation is synchronous — no pool, no threads needed."""
        d = ServeDispatcher(
            jobs=1, root=tmp_path_factory.mktemp("cold"),
            start=False, prewarm=False,
        )
        yield d
        d.shutdown()

    def test_unknown_model(self, cold):
        with pytest.raises(ServeError, match="cannot build model"):
            cold.submit("summarize", {"model": "no-such-model", "n": N})

    def test_unknown_group(self, cold):
        with pytest.raises(ServeError, match="unknown metric group"):
            cold.submit("summarize", {"model": MODEL, "n": N, "groups": "bogus"})

    def test_missing_model(self, cold):
        with pytest.raises(ServeError, match="requires a model"):
            cold.submit("summarize", {"n": N})

    def test_bad_n(self, cold):
        with pytest.raises(ServeError, match="n >= 1"):
            cold.submit("summarize", {"model": MODEL, "n": 0})
        with pytest.raises(ServeError, match="must be an integer"):
            cold.submit("summarize", {"model": MODEL, "n": "many"})

    def test_unknown_op(self, cold):
        with pytest.raises(ServeError, match="unknown operation"):
            cold.submit("frobnicate", {})

    def test_compare_rejects_group_subset(self, cold):
        with pytest.raises(ServeError, match="full battery"):
            cold.submit("compare", {"model": MODEL, "n": N, "groups": "size"})

    def test_invalid_world_id(self, cold):
        for bad in ("", "../etc", "a/b", "x" * 65):
            with pytest.raises(ServeError, match="invalid world id"):
                cold.submit("world_info", {"world": bad})


class TestStagingReapOnRestart:
    def test_restart_reaps_killed_servers_staging(self, tmp_path):
        """Satellite of ISSUE 10: a SIGKILLed server can leave ``.tmp``
        staging dirs mid-publish; the next service start on the same root
        must reap them."""
        root = tmp_path / "service-root"
        first = ServeDispatcher(jobs=1, root=root, start=False, prewarm=False)
        assert first.reaped_at_start == 0
        spool_dir = first.spool.root
        first.shutdown()

        # Simulate the kill: orphaned staging exactly where a crashed
        # publish leaves it, with a partial payload inside.
        orphan = spool_dir / "de" / "deadbeef.tmp"
        orphan.mkdir(parents=True)
        (orphan / "partial.npy").write_bytes(b"\0" * 64)

        second = ServeDispatcher(jobs=1, root=root, start=False, prewarm=False)
        try:
            assert second.reaped_at_start == 1
            assert not orphan.exists()
            assert second.stats()["reaped_at_start"] == 1
        finally:
            second.shutdown()


class TestStats:
    def test_stats_shape(self, dispatcher):
        stats = dispatcher.stats()
        assert stats["jobs"] == 1
        assert stats["queue_limit"] == 64
        assert stats["uptime_seconds"] >= 0
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert any(k.startswith("serve.") for k in stats["counters"])
        # Counters are scoped: unrelated namespaces are filtered out.
        assert all(
            k.split(".")[0] in ("serve", "battery", "cache", "transport", "generator")
            for k in stats["counters"]
        )
