"""HTTP layer + client + load harness over one live service.

One module-scoped server backs every test: the HTTP front is a thin
blocking shim over the dispatcher, so what these tests pin is the wire
contract — routes, JSON shapes, the error-to-status mapping (400/404/
409/503), the Prometheus exposition of ``/metrics``, the named-world
endpoints against a real :class:`~repro.store.store.GraphStore`, and the
:func:`~repro.serve.loadgen.run_load` harness end to end.
"""

import json
import urllib.request

import pytest

from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeDispatcher,
    percentile,
    run_load,
    running_server,
)

N = 150
MODEL = "albert-barabasi"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    dispatcher = ServeDispatcher(
        jobs=1, root=tmp_path_factory.mktemp("serve-http"), threads=2
    )
    with running_server(dispatcher) as url:
        yield ServeClient(url)
    dispatcher.shutdown()


class TestEndpoints:
    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["jobs"] == 1
        assert health["uptime_seconds"] >= 0

    def test_summarize_round_trip(self, service):
        result = service.summarize(MODEL, N, seed=1)
        assert result["model"] == MODEL
        assert result["values"]["num_nodes"] == N
        repeat = service.summarize(MODEL, N, seed=1)
        assert repeat["values"] == result["values"]
        assert repeat["generated"] == 0

    def test_summarize_with_params_and_groups(self, service):
        result = service.summarize(
            "waxman", N, seed=2, params={"alpha": 0.2}, groups=["size"]
        )
        assert result["groups"] == ["size"]
        assert set(result["values"]) >= {"num_nodes", "num_edges"}

    def test_generate(self, service):
        result = service.generate(MODEL, N, seed=8)
        assert result["num_nodes"] == N
        assert result["fingerprint"]

    def test_compare(self, service):
        result = service.compare(MODEL, N, seed=1)
        assert result["score"] >= 0
        assert result["rows"]

    def test_stats(self, service):
        stats = service.stats()
        assert stats["queue_limit"] == 64
        assert "serve.requests" in stats["counters"]

    def test_metrics_prometheus_exposition(self, service):
        text = service.metrics_text()
        assert "# TYPE serve_requests counter" in text
        assert "serve_request_seconds_count" in text
        assert "serve_queue_depth" in text


class TestErrorMapping:
    def test_unknown_model_is_400(self, service):
        with pytest.raises(ServeClientError) as excinfo:
            service.summarize("no-such-model", N)
        assert excinfo.value.status == 400
        assert "cannot build model" in excinfo.value.message

    def test_unknown_route_is_404(self, service):
        with pytest.raises(ServeClientError) as excinfo:
            service._request("GET", "/frobnicate")
        assert excinfo.value.status == 404

    def test_unknown_world_is_404(self, service):
        with pytest.raises(ServeClientError) as excinfo:
            service.world_info("missing")
        assert excinfo.value.status == 404

    def test_invalid_world_id_is_400(self, service):
        with pytest.raises(ServeClientError) as excinfo:
            service._request("PUT", "/worlds/..", {"model": MODEL, "n": N})
        assert excinfo.value.status == 400

    def test_non_object_body_is_400(self, service):
        request = urllib.request.Request(
            service.base_url + "/summarize",
            data=json.dumps([1, 2]).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unreachable_server_maps_to_status_zero(self):
        client = ServeClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServeClientError) as excinfo:
            client.health()
        assert excinfo.value.status == 0


class TestWorlds:
    def test_world_lifecycle(self, service):
        saved = service.put_world("staging", MODEL, N, seed=5, checkpoint_every=64)
        assert saved["world"] == "staging"
        assert saved["regenerated"] is True
        assert saved["info"]["num_nodes"] == N

        # Idempotent PUT: a complete identical store is reused, not re-grown.
        again = service.put_world("staging", MODEL, N, seed=5, checkpoint_every=64)
        assert again["regenerated"] is False

        listed = service.worlds()["worlds"]
        assert any(w["world"] == "staging" for w in listed)

        info = service.world_info("staging")
        assert info["info"]["num_nodes"] == N

        summary = service.world_summary("staging")
        assert summary["values"]["num_nodes"] == N

        full = service.world_summarize("staging", seed=0, groups=["size", "tail"])
        assert full["generated"] == 0
        assert full["values"]["num_nodes"] == N

        # Repeat summarize over the same stored world is pure cache.
        warm = service.world_summarize("staging", seed=0, groups=["size", "tail"])
        assert warm["computed_groups"] == []
        assert warm["values"] == full["values"]


class TestLoadHarness:
    def test_run_load_reports_percentiles_and_coalescing(self, service):
        report = run_load(
            service,
            requests=8,
            threads=4,
            models=(MODEL,),
            n=N,
            seeds=1,
            duplicate_rounds=2,
            groups=["size"],
        )
        assert report.errors == 0
        assert report.requests == 8 + 2 * 4
        assert len(report.all_latencies) == report.requests
        assert report.rps > 0
        assert report.p(50) <= report.p(99)
        assert report.coalesce_hits >= 1
        table = report.table()
        assert "p99 ms" in table and "coalesce_hits" in table

    def test_percentile_nearest_rank(self):
        values = [0.01 * i for i in range(1, 101)]
        assert percentile(values, 50) == pytest.approx(0.50)
        assert percentile(values, 99) == pytest.approx(0.99)
        assert percentile([], 50) != percentile([], 50)  # NaN
        assert percentile([7.0], 99) == 7.0
