"""Percolation equivalence suite: the CSR sweep IS the python reference.

The vectorized robustness battery (:mod:`repro.resilience.sweep`) promises
bit-for-bit agreement with the slow reference
(:func:`repro.resilience.attack.removal_sweep`) on every strategy, seed,
and graph shape — the same contract the metric kernels carry.  These
property tests enforce it on hypothesis-generated graphs covering isolated
nodes, multi-component graphs, and duplicate-degree tie-breaking, plus:

* exact trajectory equality for the sampled path-inflation sweep (integer
  distance accumulation makes even the sampled means bit-identical);
* a KS band tying the sweep's sampled sources to the full all-pairs
  distance population;
* backend-selection identity: ``auto`` obeys ``REPRO_BACKEND`` and the
  size threshold, observable on the ``resilience.sweep`` span;
* cache neutrality: robustness cells computed on one backend satisfy
  battery runs on the other, hit-for-hit.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.battery import run_battery
from repro.generators import BarabasiAlbertGenerator
from repro.graph import Graph
from repro.graph.csr import AUTO_CSR_THRESHOLD
from repro.obs.tracer import Tracer, set_tracer
from repro.resilience import (
    AttackStrategy,
    link_redundancy,
    path_inflation_sweep,
    percolation_sweep,
    removal_sweep,
    robustness_summary,
    shortcut_fraction,
)
from repro.stats.rng import derive_seed, make_rng

# Node-id pools exercising non-integer ids (positions must follow node
# iteration order for any id type, not just integers).
NODE_POOLS = (
    list(range(24)),
    [f"as{i}" for i in range(24)],
    [(i // 5, i % 5) for i in range(25)],
)

STRATEGIES = sorted(AttackStrategy, key=lambda s: s.value)


@st.composite
def graphs(draw):
    """Random small graphs: isolated nodes, multiple components, heavy
    degree ties, assorted node-id types."""
    pool = draw(st.sampled_from(NODE_POOLS))
    size = draw(st.integers(min_value=2, max_value=len(pool)))
    nodes = pool[:size]
    g = Graph()
    for node in nodes:
        g.add_node(node)
    edge_count = draw(st.integers(min_value=0, max_value=3 * size))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=size - 1),
        st.integers(min_value=0, max_value=size - 1),
    )
    for _ in range(edge_count):
        i, j = draw(pairs)
        if i == j:
            continue
        g.add_edge(nodes[i], nodes[j])
    return g


def assert_trajectories_equal(a, b):
    """Exact (NaN-aware for inflation means) trajectory equality."""
    assert a.strategy == b.strategy
    assert a.fractions_removed == b.fractions_removed
    left = getattr(a, "giant_fractions", None) or a.mean_distances
    right = getattr(b, "giant_fractions", None) or b.mean_distances
    assert len(left) == len(right)
    for x, y in zip(left, right):
        if isinstance(x, float) and math.isnan(x):
            assert math.isnan(y), (x, y)
        else:
            assert x == y, (x, y)


class TestPercolationEquivalence:
    @given(
        graphs(),
        st.sampled_from(STRATEGIES),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([0.3, 0.5, 1.0]),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_for_bit_all_strategies(self, g, strategy, seed, fraction, steps):
        py = percolation_sweep(
            g, strategy, max_fraction=fraction, steps=steps, seed=seed,
            backend="python",
        )
        cs = percolation_sweep(
            g, strategy, max_fraction=fraction, steps=steps, seed=seed,
            backend="csr",
        )
        assert py == cs  # giant trajectories carry no NaN: exact dataclass equality

    @given(st.sampled_from(STRATEGIES), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_duplicate_degree_ties(self, strategy, seed):
        # A cycle: every node degree-2, every victim choice a tie — the
        # sweep is pure tie-breaking, so any ordering discrepancy between
        # the dict reference and the argmax kernel shows up immediately.
        g = Graph()
        for i in range(17):
            g.add_edge(i, (i + 1) % 17)
        py = percolation_sweep(
            g, strategy, max_fraction=1.0, steps=5, seed=seed, backend="python"
        )
        cs = percolation_sweep(
            g, strategy, max_fraction=1.0, steps=5, seed=seed, backend="csr"
        )
        assert py == cs

    def test_isolated_nodes_and_components(self):
        g = Graph()
        for i in range(12):
            g.add_node(i)
        for u, v in [(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (9, 10)]:
            g.add_edge(u, v)
        for strategy in STRATEGIES:
            py = percolation_sweep(
                g, strategy, max_fraction=1.0, steps=4, seed=2, backend="python"
            )
            cs = percolation_sweep(
                g, strategy, max_fraction=1.0, steps=4, seed=2, backend="csr"
            )
            assert py == cs
            assert cs.giant_fractions[-1] == 0.0  # everything removed

    def test_python_backend_is_the_reference(self):
        g = BarabasiAlbertGenerator(m=2).generate(120, seed=4)
        direct = removal_sweep(g, AttackStrategy.DEGREE, steps=7, seed=6)
        routed = percolation_sweep(
            g, AttackStrategy.DEGREE, steps=7, seed=6, backend="python"
        )
        assert routed == direct

    def test_input_graph_untouched_by_csr_sweep(self):
        g = BarabasiAlbertGenerator(m=2).generate(150, seed=5)
        nodes, edges = g.num_nodes, g.num_edges
        percolation_sweep(g, AttackStrategy.DEGREE, seed=1, backend="csr")
        assert (g.num_nodes, g.num_edges) == (nodes, edges)

    def test_validation_parity(self):
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=1)
        for backend in ("python", "csr"):
            with pytest.raises(ValueError):
                percolation_sweep(g, max_fraction=0.0, backend=backend)
            with pytest.raises(ValueError):
                percolation_sweep(g, steps=0, backend=backend)
            with pytest.raises(ValueError):
                percolation_sweep(Graph(), backend=backend)
        with pytest.raises(ValueError):
            percolation_sweep(g, backend="cuda")


class TestInflationEquivalence:
    @given(
        graphs(),
        st.sampled_from(STRATEGIES),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_for_bit(self, g, strategy, seed):
        py = path_inflation_sweep(
            g, strategy, max_fraction=0.5, steps=3, samples=6, seed=seed,
            backend="python",
        )
        cs = path_inflation_sweep(
            g, strategy, max_fraction=0.5, steps=3, samples=6, seed=seed,
            backend="csr",
        )
        assert_trajectories_equal(py, cs)

    def test_sampled_sources_track_population_ks_band(self):
        # The sweep's step-0 sources are a seeded draw from all nodes; the
        # distances they see must be KS-close to the full all-pairs
        # population, and the sweep's reported mean must be exactly the
        # sampled population's integer-ratio mean.
        g = BarabasiAlbertGenerator(m=2).generate(400, seed=3)
        view = g.csr()
        n = view.num_nodes
        full = view.distance_batch(np.arange(n, dtype=np.int64))
        population = full[full > 0]

        seed = 11
        samples = 64
        sources = make_rng(derive_seed("inflation-sources", seed, 0)).sample(
            list(g.nodes()), samples
        )
        positions = np.fromiter(
            (view.index[s] for s in sources), dtype=np.int64, count=samples
        )
        sampled = full[:, positions][full[:, positions] > 0]

        traj = path_inflation_sweep(
            g, AttackStrategy.RANDOM, max_fraction=0.3, steps=1,
            samples=samples, seed=seed, backend="csr",
        )
        expected_mean = int(sampled.sum(dtype=np.int64)) / int(sampled.size)
        assert traj.mean_distances[0] == expected_mean

        top = max(int(population.max()), int(sampled.max()))
        grid = np.arange(1, top + 1)
        pop_cdf = np.searchsorted(np.sort(population), grid, side="right") / population.size
        sam_cdf = np.searchsorted(np.sort(sampled), grid, side="right") / sampled.size
        ks = float(np.abs(pop_cdf - sam_cdf).max())
        assert ks < 0.15, f"sampled-distance KS statistic {ks:.3f} out of band"

    def test_fragmented_graph_goes_nan_identically(self):
        g = Graph()
        for i in range(8):
            g.add_node(i)
        g.add_edge(0, 1)
        py = path_inflation_sweep(
            g, AttackStrategy.DEGREE, max_fraction=1.0, steps=2, samples=4,
            seed=1, backend="python",
        )
        cs = path_inflation_sweep(
            g, AttackStrategy.DEGREE, max_fraction=1.0, steps=2, samples=4,
            seed=1, backend="csr",
        )
        assert_trajectories_equal(py, cs)
        assert math.isnan(cs.mean_distances[-1])

    def test_samples_validation(self):
        g = BarabasiAlbertGenerator(m=2).generate(50, seed=1)
        with pytest.raises(ValueError):
            path_inflation_sweep(g, samples=0)


class TestRedundancyEquivalence:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_shortcut_fraction_bit_for_bit(self, g):
        py = shortcut_fraction(g, backend="python")
        cs = shortcut_fraction(g, backend="csr")
        if math.isnan(py):
            assert math.isnan(cs)
        else:
            assert py == cs

    @given(graphs())
    @settings(max_examples=25, deadline=None)
    def test_link_redundancy_backend_neutral(self, g):
        py = link_redundancy(g, backend="python")
        cs = link_redundancy(g, backend="csr")
        if math.isnan(py):
            assert math.isnan(cs)
        else:
            assert py == cs

    def test_known_values(self):
        # Triangle + pendant: 3 cycle edges redundant, 1 bridge; only the
        # triangle's edges have two-hop bypasses.
        g = Graph()
        for u, v in [(0, 1), (1, 2), (2, 0), (2, 3)]:
            g.add_edge(u, v)
        assert link_redundancy(g) == 0.75
        assert shortcut_fraction(g) == 0.75
        empty = Graph()
        empty.add_node("a")
        assert math.isnan(link_redundancy(empty))
        assert math.isnan(shortcut_fraction(empty))


def _sweep_backend_span(graph, backend, env=None, monkeypatch=None):
    """Run one sweep under a capturing tracer; return the resolved backend
    recorded on its ``resilience.sweep`` span."""
    if env is not None:
        monkeypatch.setenv("REPRO_BACKEND", env)
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        percolation_sweep(graph, AttackStrategy.RANDOM, steps=2, seed=0, backend=backend)
    finally:
        set_tracer(previous)
    spans = [s for s in tracer.spans if s.name == "resilience.sweep"]
    assert len(spans) == 1
    return spans[0].attrs["backend"]


class TestBackendSelection:
    def test_env_var_forces_backend(self, monkeypatch):
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=1)
        assert _sweep_backend_span(g, "auto", env="csr", monkeypatch=monkeypatch) == "csr"
        assert _sweep_backend_span(g, "auto", env="python", monkeypatch=monkeypatch) == "python"
        # Explicit argument beats the environment.
        assert _sweep_backend_span(g, "python", env="csr", monkeypatch=monkeypatch) == "python"

    def test_auto_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        small = BarabasiAlbertGenerator(m=2).generate(AUTO_CSR_THRESHOLD - 50, seed=1)
        large = BarabasiAlbertGenerator(m=2).generate(AUTO_CSR_THRESHOLD + 50, seed=1)
        assert _sweep_backend_span(small, "auto") == "python"
        assert _sweep_backend_span(large, "auto") == "csr"


class TestCacheBackendNeutrality:
    def test_cells_cross_satisfy_backends(self, tmp_path):
        cache = tmp_path / "cells"
        kwargs = dict(n=120, seeds=2, base_seed=9, groups=("robustness",))
        cold = run_battery(["barabasi-albert"], cache=str(cache), backend="python", **kwargs)
        assert cold.stats.misses > 0 and cold.stats.hits == 0
        warm = run_battery(["barabasi-albert"], cache=str(cache), backend="csr", **kwargs)
        assert warm.stats.misses == 0
        assert warm.stats.hits == cold.stats.misses
        for before, after in zip(
            cold.entries[0].summaries, warm.entries[0].summaries
        ):
            assert set(before.values) == set(after.values)
            for key, value in before.values.items():
                other = after.values[key]
                if isinstance(value, float) and math.isnan(value):
                    assert math.isnan(other)
                else:
                    assert value == other

    def test_robustness_summary_backend_identity(self):
        g = BarabasiAlbertGenerator(m=2).generate(200, seed=8)
        py = robustness_summary(g, seed=5, backend="python")
        cs = robustness_summary(g, seed=5, backend="csr")
        assert set(py) == set(cs)
        for key, value in py.items():
            if math.isnan(value):
                assert math.isnan(cs[key])
            else:
                assert value == cs[key]
