"""Tests for removal sweeps."""

import math

import pytest

from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm
from repro.graph import Graph, giant_component
from repro.resilience import (
    AttackStrategy,
    critical_fraction,
    removal_sweep,
    victim_order,
)
from repro.stats.rng import make_rng


@pytest.fixture(scope="module")
def ba_graph():
    return BarabasiAlbertGenerator(m=2).generate(400, seed=1)


class TestRemovalSweep:
    def test_starts_at_full_giant(self, ba_graph):
        run = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=2)
        assert run.fractions_removed[0] == 0.0
        assert run.giant_fractions[0] == 1.0

    def test_fractions_monotone(self, ba_graph):
        run = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=3)
        fr = run.fractions_removed
        assert all(fr[i] < fr[i + 1] for i in range(len(fr) - 1))

    def test_input_graph_untouched(self, ba_graph):
        before = ba_graph.num_nodes
        removal_sweep(ba_graph, AttackStrategy.DEGREE, seed=4)
        assert ba_graph.num_nodes == before

    def test_reaches_max_fraction(self, ba_graph):
        run = removal_sweep(ba_graph, max_fraction=0.3, steps=5, seed=5)
        assert run.fractions_removed[-1] == pytest.approx(0.3, abs=0.02)

    def test_targeted_attack_beats_random(self, ba_graph):
        random_run = removal_sweep(
            ba_graph, AttackStrategy.RANDOM, max_fraction=0.3, seed=6
        )
        attack_run = removal_sweep(
            ba_graph, AttackStrategy.DEGREE, max_fraction=0.3, seed=6
        )
        assert attack_run.giant_at(0.3) < random_run.giant_at(0.3)

    def test_static_degree_close_to_adaptive(self, ba_graph):
        adaptive = removal_sweep(
            ba_graph, AttackStrategy.DEGREE, max_fraction=0.2, seed=7
        )
        static = removal_sweep(
            ba_graph, AttackStrategy.DEGREE_STATIC, max_fraction=0.2, seed=7
        )
        assert static.giant_at(0.2) <= adaptive.giant_at(0.2) + 0.3

    def test_betweenness_strategy_effective(self, ba_graph):
        random_run = removal_sweep(
            ba_graph, AttackStrategy.RANDOM, max_fraction=0.2, seed=8
        )
        bc_run = removal_sweep(
            ba_graph, AttackStrategy.BETWEENNESS, max_fraction=0.2, seed=8
        )
        assert bc_run.giant_at(0.2) < random_run.giant_at(0.2)

    def test_random_reproducible(self, ba_graph):
        a = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=9)
        b = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=9)
        assert a.giant_fractions == b.giant_fractions

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            removal_sweep(ba_graph, max_fraction=0.0)
        with pytest.raises(ValueError):
            removal_sweep(ba_graph, steps=0)
        with pytest.raises(ValueError):
            removal_sweep(Graph())

    def test_giant_at_interpolates(self, ba_graph):
        run = removal_sweep(ba_graph, AttackStrategy.RANDOM, steps=10, seed=10)
        assert run.giant_at(0.0) == 1.0
        assert run.giant_at(1.0) == run.giant_fractions[-1]


class TestTieBreaking:
    """Equal scores must break by node iteration order — deterministically,
    on every strategy, so the CSR sweep can reproduce the reference."""

    @pytest.fixture()
    def tied_graph(self):
        # Insertion order deliberately scrambled relative to id order, and
        # every node degree-2 (a cycle), so *every* choice is a tie.
        order = [3, 0, 7, 1, 5, 2, 6, 4]
        g = Graph()
        for node in order:
            g.add_node(node)
        for i in range(8):
            g.add_edge(i, (i + 1) % 8)
        return g

    def test_static_degree_ties_follow_iteration_order(self, tied_graph):
        order = victim_order(tied_graph, AttackStrategy.DEGREE_STATIC, make_rng(0))
        assert order == [3, 0, 7, 1, 5, 2, 6, 4]

    def test_betweenness_ties_follow_iteration_order(self, tied_graph):
        # A cycle is vertex-transitive: all betweenness scores are equal,
        # so the order is pure tie-breaking.
        order = victim_order(
            tied_graph, AttackStrategy.BETWEENNESS, make_rng(0),
            betweenness_pivots=8,
        )
        assert order == [3, 0, 7, 1, 5, 2, 6, 4]

    def test_mixed_degrees_sort_stably(self):
        # Two degree bands — 0/4/5 at degree 3, leaves 1/2/3 at degree 1 —
        # and ties within each band keep insertion order (0,1,4,5,2,3).
        g = Graph()
        for u, v in [(0, 1), (0, 4), (0, 5), (4, 5), (4, 2), (5, 3)]:
            g.add_edge(u, v)
        order = victim_order(g, AttackStrategy.DEGREE_STATIC, make_rng(0))
        assert order == [0, 4, 5, 1, 2, 3]

    def test_adaptive_sweep_deterministic_on_ties(self, tied_graph):
        runs = [
            removal_sweep(
                tied_graph, AttackStrategy.DEGREE, max_fraction=1.0, steps=4,
                seed=0,
            )
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_random_strategy_unaffected_by_tie_rule(self, tied_graph):
        a = victim_order(tied_graph, AttackStrategy.RANDOM, make_rng(5))
        b = victim_order(tied_graph, AttackStrategy.RANDOM, make_rng(5))
        assert a == b
        assert sorted(a) == list(range(8))

    def test_adaptive_strategy_has_no_precomputed_order(self, tied_graph):
        with pytest.raises(ValueError):
            victim_order(tied_graph, AttackStrategy.DEGREE, make_rng(0))


class TestCriticalFraction:
    def test_attack_collapses_heavy_tail(self, ba_graph):
        run = removal_sweep(
            ba_graph, AttackStrategy.DEGREE, max_fraction=0.6, steps=30, seed=11
        )
        critical = critical_fraction(run)
        assert critical is not None
        assert critical < 0.6

    def test_random_failure_no_collapse_on_heavy_tail(self, ba_graph):
        run = removal_sweep(
            ba_graph, AttackStrategy.RANDOM, max_fraction=0.5, steps=20, seed=12
        )
        assert critical_fraction(run) is None

    def test_threshold_validation(self, ba_graph):
        run = removal_sweep(ba_graph, steps=2, seed=13)
        with pytest.raises(ValueError):
            critical_fraction(run, collapse_threshold=0.0)
