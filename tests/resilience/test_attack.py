"""Tests for removal sweeps."""

import math

import pytest

from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm
from repro.graph import Graph, giant_component
from repro.resilience import AttackStrategy, critical_fraction, removal_sweep


@pytest.fixture(scope="module")
def ba_graph():
    return BarabasiAlbertGenerator(m=2).generate(400, seed=1)


class TestRemovalSweep:
    def test_starts_at_full_giant(self, ba_graph):
        run = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=2)
        assert run.fractions_removed[0] == 0.0
        assert run.giant_fractions[0] == 1.0

    def test_fractions_monotone(self, ba_graph):
        run = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=3)
        fr = run.fractions_removed
        assert all(fr[i] < fr[i + 1] for i in range(len(fr) - 1))

    def test_input_graph_untouched(self, ba_graph):
        before = ba_graph.num_nodes
        removal_sweep(ba_graph, AttackStrategy.DEGREE, seed=4)
        assert ba_graph.num_nodes == before

    def test_reaches_max_fraction(self, ba_graph):
        run = removal_sweep(ba_graph, max_fraction=0.3, steps=5, seed=5)
        assert run.fractions_removed[-1] == pytest.approx(0.3, abs=0.02)

    def test_targeted_attack_beats_random(self, ba_graph):
        random_run = removal_sweep(
            ba_graph, AttackStrategy.RANDOM, max_fraction=0.3, seed=6
        )
        attack_run = removal_sweep(
            ba_graph, AttackStrategy.DEGREE, max_fraction=0.3, seed=6
        )
        assert attack_run.giant_at(0.3) < random_run.giant_at(0.3)

    def test_static_degree_close_to_adaptive(self, ba_graph):
        adaptive = removal_sweep(
            ba_graph, AttackStrategy.DEGREE, max_fraction=0.2, seed=7
        )
        static = removal_sweep(
            ba_graph, AttackStrategy.DEGREE_STATIC, max_fraction=0.2, seed=7
        )
        assert static.giant_at(0.2) <= adaptive.giant_at(0.2) + 0.3

    def test_betweenness_strategy_effective(self, ba_graph):
        random_run = removal_sweep(
            ba_graph, AttackStrategy.RANDOM, max_fraction=0.2, seed=8
        )
        bc_run = removal_sweep(
            ba_graph, AttackStrategy.BETWEENNESS, max_fraction=0.2, seed=8
        )
        assert bc_run.giant_at(0.2) < random_run.giant_at(0.2)

    def test_random_reproducible(self, ba_graph):
        a = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=9)
        b = removal_sweep(ba_graph, AttackStrategy.RANDOM, seed=9)
        assert a.giant_fractions == b.giant_fractions

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            removal_sweep(ba_graph, max_fraction=0.0)
        with pytest.raises(ValueError):
            removal_sweep(ba_graph, steps=0)
        with pytest.raises(ValueError):
            removal_sweep(Graph())

    def test_giant_at_interpolates(self, ba_graph):
        run = removal_sweep(ba_graph, AttackStrategy.RANDOM, steps=10, seed=10)
        assert run.giant_at(0.0) == 1.0
        assert run.giant_at(1.0) == run.giant_fractions[-1]


class TestCriticalFraction:
    def test_attack_collapses_heavy_tail(self, ba_graph):
        run = removal_sweep(
            ba_graph, AttackStrategy.DEGREE, max_fraction=0.6, steps=30, seed=11
        )
        critical = critical_fraction(run)
        assert critical is not None
        assert critical < 0.6

    def test_random_failure_no_collapse_on_heavy_tail(self, ba_graph):
        run = removal_sweep(
            ba_graph, AttackStrategy.RANDOM, max_fraction=0.5, steps=20, seed=12
        )
        assert critical_fraction(run) is None

    def test_threshold_validation(self, ba_graph):
        run = removal_sweep(ba_graph, steps=2, seed=13)
        with pytest.raises(ValueError):
            critical_fraction(run, collapse_threshold=0.0)
