"""Tests for SIS epidemic simulation."""

import pytest

from repro.generators import ErdosRenyiGnm, PfpGenerator
from repro.graph import Graph, giant_component
from repro.resilience import endemic_prevalence, prevalence_curve, simulate_sis


@pytest.fixture(scope="module")
def er_graph():
    return giant_component(ErdosRenyiGnm(m=800).generate(400, seed=1))


@pytest.fixture(scope="module")
def pfp_graph():
    return giant_component(PfpGenerator().generate(400, seed=2))


class TestSimulateSis:
    def test_beta_zero_dies_out(self, er_graph):
        result = simulate_sis(er_graph, beta=0.0, mu=0.5, steps=100, seed=3)
        assert result.died_out
        assert result.final_prevalence == 0.0

    def test_beta_one_mu_tiny_saturates(self, er_graph):
        result = simulate_sis(er_graph, beta=1.0, mu=0.01, steps=50, seed=4)
        assert result.final_prevalence > 0.9

    def test_trajectory_bounded(self, er_graph):
        result = simulate_sis(er_graph, beta=0.3, steps=50, seed=5)
        assert all(0.0 <= p <= 1.0 for p in result.trajectory)

    def test_reproducible(self, er_graph):
        a = simulate_sis(er_graph, beta=0.2, seed=6)
        b = simulate_sis(er_graph, beta=0.2, seed=6)
        assert a.trajectory == b.trajectory

    def test_trajectory_stops_on_extinction(self, er_graph):
        result = simulate_sis(
            er_graph, beta=0.001, mu=1.0, steps=500, initial_fraction=0.01, seed=7
        )
        assert result.died_out
        assert len(result.trajectory) < 500

    def test_validation(self, er_graph):
        with pytest.raises(ValueError):
            simulate_sis(er_graph, beta=1.5)
        with pytest.raises(ValueError):
            simulate_sis(er_graph, beta=0.5, mu=0.0)
        with pytest.raises(ValueError):
            simulate_sis(er_graph, beta=0.5, initial_fraction=0.0)
        with pytest.raises(ValueError):
            simulate_sis(er_graph, beta=0.5, steps=0)
        with pytest.raises(ValueError):
            simulate_sis(Graph(), beta=0.5)


class TestEndemicBehaviour:
    def test_above_threshold_endemic_on_er(self, er_graph):
        # <k> = 4, mu = 0.5: classical threshold ~ 0.125; beta = 0.4 is
        # deep in the endemic phase.
        prevalence = endemic_prevalence(er_graph, beta=0.4, mu=0.5, seed=8)
        assert prevalence > 0.2

    def test_below_threshold_dies_on_er(self, er_graph):
        prevalence = endemic_prevalence(er_graph, beta=0.02, mu=0.5, seed=9)
        assert prevalence < 0.02

    def test_heavy_tail_sustains_lower_beta(self, er_graph, pfp_graph):
        beta = 0.06
        heavy = endemic_prevalence(pfp_graph, beta=beta, mu=0.5, steps=150, seed=10)
        flat = endemic_prevalence(er_graph, beta=beta, mu=0.5, steps=150, seed=10)
        assert heavy > flat + 0.02

    def test_curve_monotone_overall(self, er_graph):
        curve = prevalence_curve(
            er_graph, betas=(0.02, 0.2, 0.6), mu=0.5, runs=2, seed=11
        )
        values = [p for _, p in curve]
        assert values[-1] > values[0]

    def test_runs_validation(self, er_graph):
        with pytest.raises(ValueError):
            endemic_prevalence(er_graph, beta=0.1, runs=0)
