"""Tests for short-cycle counting via trace identities."""

import pytest

from repro.graph import Graph, count_cycles, cycle_counts_3_4_5


class TestKnownGraphs:
    def test_triangle(self, triangle):
        assert cycle_counts_3_4_5(triangle) == {3: 1, 4: 0, 5: 0}

    def test_square(self, square):
        assert cycle_counts_3_4_5(square) == {3: 0, 4: 1, 5: 0}

    def test_five_cycle(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5)
        assert cycle_counts_3_4_5(g) == {3: 0, 4: 0, 5: 1}

    def test_k4(self, k4):
        assert cycle_counts_3_4_5(k4) == {3: 4, 4: 3, 5: 0}

    def test_k5(self, k5):
        # K5: C(5,3)=10 triangles, 15 four-cycles, 12 five-cycles.
        assert cycle_counts_3_4_5(k5) == {3: 10, 4: 15, 5: 12}

    def test_petersen(self, petersen):
        # Petersen graph: girth 5 with exactly 12 pentagons.
        assert cycle_counts_3_4_5(petersen) == {3: 0, 4: 0, 5: 12}

    def test_star_acyclic(self, star):
        assert cycle_counts_3_4_5(star) == {3: 0, 4: 0, 5: 0}

    def test_empty(self):
        assert cycle_counts_3_4_5(Graph()) == {3: 0, 4: 0, 5: 0}

    def test_complete_bipartite_k23(self):
        g = Graph()
        for u in ("a", "b"):
            for v in (1, 2, 3):
                g.add_edge(u, v)
        # K_{2,3}: no odd cycles; C(2,2)*C(3,2) = 3 four-cycles.
        assert cycle_counts_3_4_5(g) == {3: 0, 4: 3, 5: 0}

    def test_weights_ignored(self):
        g = Graph()
        g.add_edge(0, 1, weight=7)
        g.add_edge(1, 2, weight=7)
        g.add_edge(2, 0, weight=7)
        assert cycle_counts_3_4_5(g)[3] == 1


class TestCountCycles:
    def test_single_length(self, k4):
        assert count_cycles(k4, 3) == 4
        assert count_cycles(k4, 4) == 3
        assert count_cycles(k4, 5) == 0

    def test_unsupported_length_rejected(self, k4):
        with pytest.raises(ValueError):
            count_cycles(k4, 6)


class TestAgainstNetworkxEnumeration:
    def test_triangles_match_on_random_graph(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        triangles = sum(nx.triangles(to_networkx(medium_random)).values()) // 3
        assert cycle_counts_3_4_5(medium_random)[3] == triangles

    def test_cycles_match_explicit_enumeration(self):
        # Brute-force enumeration oracle on a small random graph.
        import itertools

        from repro.generators import ErdosRenyiGnm

        g = ErdosRenyiGnm(m=30).generate(12, seed=5)
        nodes = list(g.nodes())

        def is_cycle(order):
            return all(
                g.has_edge(order[i], order[(i + 1) % len(order)])
                for i in range(len(order))
            )

        expected = {}
        for h in (3, 4, 5):
            count = 0
            for combo in itertools.combinations(nodes, h):
                for perm in itertools.permutations(combo[1:]):
                    order = (combo[0],) + perm
                    if is_cycle(order):
                        count += 1
            expected[h] = count // (2 * 1)  # each cycle seen twice (direction)

        ours = cycle_counts_3_4_5(g)
        for h in (3, 4, 5):
            assert ours[h] == expected[h], f"mismatch at h={h}"
