"""Tests for bridges and articulation points."""

import pytest

from repro.graph import (
    Graph,
    articulation_points,
    bridges,
    two_edge_connected_core,
)


class TestBridges:
    def test_path_all_bridges(self, path4):
        assert bridges(path4) == {
            frozenset((0, 1)),
            frozenset((1, 2)),
            frozenset((2, 3)),
        }

    def test_cycle_no_bridges(self, square):
        assert bridges(square) == set()

    def test_barbell_bridge(self, barbell):
        assert bridges(barbell) == {frozenset((2, 3))}

    def test_star_all_bridges(self, star):
        assert len(bridges(star)) == 5

    def test_complete_graph_none(self, k5):
        assert bridges(k5) == set()

    def test_disconnected_handled(self, two_triangles):
        assert bridges(two_triangles) == set()

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = bridges(medium_random)
        theirs = {frozenset(e) for e in nx.bridges(to_networkx(medium_random))}
        assert ours == theirs

    def test_matches_networkx_on_sparse_model(self):
        import networkx as nx

        from repro.generators import GlpGenerator
        from repro.graph.convert import to_networkx

        g = GlpGenerator().generate(300, seed=4)
        ours = bridges(g)
        theirs = {frozenset(e) for e in nx.bridges(to_networkx(g))}
        assert ours == theirs


class TestArticulationPoints:
    def test_path_interior(self, path4):
        assert articulation_points(path4) == {1, 2}

    def test_cycle_none(self, square):
        assert articulation_points(square) == set()

    def test_star_hub(self, star):
        assert articulation_points(star) == {0}

    def test_barbell_bridge_endpoints(self, barbell):
        assert articulation_points(barbell) == {2, 3}

    def test_complete_none(self, k5):
        assert articulation_points(k5) == set()

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = articulation_points(medium_random)
        theirs = set(nx.articulation_points(to_networkx(medium_random)))
        assert ours == theirs

    def test_matches_networkx_with_leaves(self):
        import networkx as nx

        from repro.generators import InetGenerator
        from repro.graph.convert import to_networkx

        g = InetGenerator().generate(300, seed=5)
        ours = articulation_points(g)
        theirs = set(nx.articulation_points(to_networkx(g)))
        assert ours == theirs


class TestTwoEdgeConnectedCore:
    def test_strips_stub_fringe(self, barbell):
        core = two_edge_connected_core(barbell)
        # Removing the bridge leaves two triangles; the giant is one of them.
        assert core.num_nodes == 3
        assert bridges(core) == set()

    def test_cycle_is_its_own_core(self, square):
        assert two_edge_connected_core(square).num_nodes == 4

    def test_core_of_model_is_bridge_free(self):
        from repro.generators import GlpGenerator

        g = GlpGenerator().generate(300, seed=6)
        core = two_edge_connected_core(g)
        assert bridges(core) == set()
        assert 0 < core.num_nodes <= g.num_nodes
