"""Tests for k-core decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, core_numbers, core_profile, degeneracy, k_core


class TestCoreNumbers:
    def test_complete_graph(self, k4):
        assert core_numbers(k4) == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_star_is_one_core(self, star):
        cores = core_numbers(star)
        assert all(c == 1 for c in cores.values())

    def test_path(self, path4):
        assert all(c == 1 for c in core_numbers(path4).values())

    def test_triangle_with_pendant(self):
        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 0), (0, 9)]:
            g.add_edge(a, b)
        cores = core_numbers(g)
        assert cores[9] == 1
        assert cores[0] == cores[1] == cores[2] == 2

    def test_isolated_node_zero(self):
        g = Graph()
        g.add_node(0)
        assert core_numbers(g) == {0: 0}

    def test_empty(self):
        assert core_numbers(Graph()) == {}

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        assert core_numbers(medium_random) == nx.core_number(to_networkx(medium_random))

    def test_matches_networkx_on_disconnected(self, two_triangles):
        import networkx as nx

        from repro.graph.convert import to_networkx

        assert core_numbers(two_triangles) == nx.core_number(to_networkx(two_triangles))

    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_core_definition_property(self, edges):
        # Every node in the k-core subgraph has internal degree >= its core k.
        g = Graph()
        for u, v in edges:
            g.add_edge(u, v)
        cores = core_numbers(g)
        for k in set(cores.values()):
            sub = k_core(g, k)
            for node in sub.nodes():
                assert sub.degree(node) >= min(k, cores[node]) or sub.degree(node) >= k


class TestKCore:
    def test_pendant_removed(self):
        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 0), (0, 9)]:
            g.add_edge(a, b)
        core2 = k_core(g, 2)
        assert set(core2.nodes()) == {0, 1, 2}

    def test_zero_core_is_everything(self, star):
        assert k_core(star, 0).num_nodes == star.num_nodes

    def test_too_deep_core_empty(self, k4):
        assert k_core(k4, 4).num_nodes == 0

    def test_negative_k_rejected(self, k4):
        with pytest.raises(ValueError):
            k_core(k4, -1)


class TestDegeneracy:
    def test_complete(self, k5):
        assert degeneracy(k5) == 4

    def test_tree(self, star):
        assert degeneracy(star) == 1

    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_ba_graph_equals_m(self):
        # Plain BA has degeneracy exactly m: the known shallow-core failure.
        from repro.generators import BarabasiAlbertGenerator

        g = BarabasiAlbertGenerator(m=3).generate(300, seed=1)
        assert degeneracy(g) == 3


class TestCoreProfile:
    def test_shell_sizes_sum_to_n(self, medium_random):
        profile = core_profile(medium_random)
        assert sum(profile.shell_sizes.values()) == medium_random.num_nodes

    def test_core_sizes_monotone(self, medium_random):
        profile = core_profile(medium_random)
        sizes = [profile.core_sizes[k] for k in sorted(profile.core_sizes)]
        assert all(sizes[i] >= sizes[i + 1] for i in range(len(sizes) - 1))

    def test_zero_core_is_n(self, medium_random):
        profile = core_profile(medium_random)
        assert profile.core_sizes[0] == medium_random.num_nodes

    def test_rows_aligned(self, k4):
        profile = core_profile(k4)
        rows = profile.rows()
        assert (3, 4, 4) in rows
        assert profile.degeneracy == 3
