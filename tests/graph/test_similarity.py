"""Tests for distributional graph distances."""

import math

import pytest

from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm, GlpGenerator
from repro.graph import (
    clustering_spectrum_distance,
    core_profile_distance,
    degree_distribution_distance,
    path_length_distance,
    similarity_report,
)


@pytest.fixture(scope="module")
def ba_pair():
    return (
        BarabasiAlbertGenerator(m=2).generate(300, seed=1),
        BarabasiAlbertGenerator(m=2).generate(300, seed=2),
    )


@pytest.fixture(scope="module")
def er_graph():
    return ErdosRenyiGnm(m=600).generate(300, seed=3)


class TestDegreeDistance:
    def test_self_zero(self, ba_pair):
        assert degree_distribution_distance(ba_pair[0], ba_pair[0]) == 0.0

    def test_same_model_small(self, ba_pair):
        assert degree_distribution_distance(*ba_pair) < 0.15

    def test_cross_model_larger(self, ba_pair, er_graph):
        same = degree_distribution_distance(*ba_pair)
        cross = degree_distribution_distance(ba_pair[0], er_graph)
        assert cross > same

    def test_symmetric(self, ba_pair, er_graph):
        assert degree_distribution_distance(
            ba_pair[0], er_graph
        ) == pytest.approx(degree_distribution_distance(er_graph, ba_pair[0]))


class TestClusteringDistance:
    def test_self_zero(self, ba_pair):
        assert clustering_spectrum_distance(ba_pair[0], ba_pair[0]) == 0.0

    def test_clustered_vs_unclustered(self, er_graph):
        glp = GlpGenerator().generate(300, seed=4)
        assert clustering_spectrum_distance(glp, er_graph) > 0.01

    def test_no_shared_degrees_nan(self, triangle, star):
        # triangle degrees {2}, star degrees {1, 5}: no shared k >= 2.
        assert math.isnan(clustering_spectrum_distance(triangle, star))


class TestPathDistance:
    def test_self_zero(self, ba_pair):
        assert path_length_distance(ba_pair[0], ba_pair[0]) == 0.0

    def test_bounded(self, ba_pair, er_graph):
        d = path_length_distance(ba_pair[0], er_graph)
        assert 0.0 <= d <= 1.0

    def test_long_vs_short_paths(self, path4, k4):
        assert path_length_distance(path4, k4) > 0.3


class TestCoreDistance:
    def test_self_zero(self, ba_pair):
        assert core_profile_distance(ba_pair[0], ba_pair[0]) == 0.0

    def test_deep_vs_shallow(self, er_graph):
        glp = GlpGenerator().generate(300, seed=5)
        assert core_profile_distance(glp, er_graph) > 0.1

    def test_bounded(self, ba_pair, er_graph):
        assert 0.0 <= core_profile_distance(ba_pair[0], er_graph) <= 1.0


class TestReport:
    def test_keys(self, ba_pair):
        report = similarity_report(*ba_pair)
        assert set(report) == {
            "degree_ks",
            "clustering_spectrum",
            "path_length_tv",
            "core_profile_l1",
        }

    def test_self_report_all_zero(self, ba_pair):
        report = similarity_report(ba_pair[0], ba_pair[0])
        for key, value in report.items():
            assert value == 0.0 or math.isnan(value), key
