"""Property tests: the CSR and python backends agree on every metric.

The CSR fast path is a speed choice, never a semantics choice — every
scalar in :data:`repro.core.metrics.METRIC_GROUPS` must come out
bit-for-bit identical from both backends on arbitrary graphs, including
ones with isolated nodes, reinforced (multi-weight) edges, and
non-integer node ids.  Betweenness (not a battery scalar) accumulates
floats in a different order on the two backends, so it gets a 1e-9
relative tolerance instead of exact equality.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import METRIC_GROUPS, compute_metric_groups
from repro.graph import Graph
from repro.graph.betweenness import approximate_betweenness, betweenness_centrality
from repro.graph.clustering import (
    average_clustering,
    clustering_by_degree,
    clustering_spectrum,
    local_clustering,
    total_triangles,
    transitivity,
    triangles_per_node,
)
from repro.graph.cores import core_numbers, core_profile, degeneracy
from repro.graph.correlations import (
    average_neighbor_degree,
    degree_assortativity,
    knn_by_degree,
    knn_spectrum,
)
from repro.graph.richclub import rich_club_coefficient
from repro.graph.shortest_paths import (
    diameter,
    eccentricities,
    path_length_distribution,
)
from repro.graph.traversal import connected_components, is_connected

# Node-id pools exercising non-integer ids; each graph draws from one pool
# so ids stay mutually comparable.
NODE_POOLS = (
    list(range(24)),
    [f"as{i}" for i in range(24)],
    [float(i) / 2 for i in range(24)],
    [(i // 5, i % 5) for i in range(25)],
)


@st.composite
def graphs(draw):
    """Random small graphs: isolated nodes, repeated (reinforced) edges,
    assorted node-id types, weights that are not all 1."""
    pool = draw(st.sampled_from(NODE_POOLS))
    size = draw(st.integers(min_value=2, max_value=len(pool)))
    nodes = pool[:size]
    g = Graph()
    for node in nodes:
        g.add_node(node)
    edge_count = draw(st.integers(min_value=0, max_value=3 * size))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=size - 1),
        st.integers(min_value=0, max_value=size - 1),
    )
    weights = st.sampled_from([1, 1.0, 2.5, 3, 0.75])
    for _ in range(edge_count):
        i, j = draw(pairs)
        if i == j:
            continue
        g.add_edge(nodes[i], nodes[j], weight=draw(weights))
    return g


def assert_same(a, b, rel=0.0, label=""):
    """Recursive equality, exact by default, NaN-aware for floats."""
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ), (label, a, b)
    if isinstance(a, dict):
        assert set(a) == set(b), (label, set(a) ^ set(b))
        for key in a:
            assert_same(a[key], b[key], rel=rel, label=f"{label}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), (label, a, b)
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same(x, y, rel=rel, label=f"{label}[{i}]")
    elif isinstance(a, float) and math.isnan(a):
        assert isinstance(b, float) and math.isnan(b), (label, a, b)
    elif rel and isinstance(a, float):
        assert abs(a - b) <= rel * max(1.0, abs(a), abs(b)), (label, a, b)
    else:
        assert a == b, (label, a, b)


class TestBatteryScalars:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_all_metric_groups_bit_for_bit(self, g):
        groups = tuple(METRIC_GROUPS)
        py = compute_metric_groups(g, groups, backend="python")
        cs = compute_metric_groups(g, groups, backend="csr")
        assert_same(py, cs, label="groups")

    @given(graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_sampled_paths_share_sources(self, g, seed):
        py = compute_metric_groups(
            g, ("paths",), path_sample_threshold=3, path_samples=4,
            seed=seed, backend="python",
        )
        cs = compute_metric_groups(
            g, ("paths",), path_sample_threshold=3, path_samples=4,
            seed=seed, backend="csr",
        )
        assert_same(py, cs, label="sampled-paths")


class TestKernelEquivalence:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_clustering_kernels(self, g):
        assert_same(
            triangles_per_node(g, backend="python"),
            triangles_per_node(g, backend="csr"),
            label="triangles_per_node",
        )
        assert total_triangles(g, backend="python") == total_triangles(
            g, backend="csr"
        )
        assert_same(
            local_clustering(g, backend="python"),
            local_clustering(g, backend="csr"),
            label="local_clustering",
        )
        assert average_clustering(g, backend="python") == average_clustering(
            g, backend="csr"
        )
        assert transitivity(g, backend="python") == transitivity(g, backend="csr")
        assert_same(
            clustering_by_degree(g, backend="python"),
            clustering_by_degree(g, backend="csr"),
            label="clustering_by_degree",
        )
        assert_same(
            clustering_spectrum(g, backend="python"),
            clustering_spectrum(g, backend="csr"),
            label="clustering_spectrum",
        )

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_core_kernels(self, g):
        assert_same(
            core_numbers(g, backend="python"),
            core_numbers(g, backend="csr"),
            label="core_numbers",
        )
        assert degeneracy(g, backend="python") == degeneracy(g, backend="csr")
        assert core_profile(g, backend="python") == core_profile(g, backend="csr")

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_correlation_kernels(self, g):
        assert_same(
            average_neighbor_degree(g, backend="python"),
            average_neighbor_degree(g, backend="csr"),
            label="average_neighbor_degree",
        )
        assert_same(
            knn_by_degree(g, backend="python"),
            knn_by_degree(g, backend="csr"),
            label="knn_by_degree",
        )
        assert_same(
            knn_spectrum(g, backend="python"),
            knn_spectrum(g, backend="csr"),
            label="knn_spectrum",
        )
        assert degree_assortativity(g, backend="python") == degree_assortativity(
            g, backend="csr"
        )

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_richclub_kernel(self, g):
        assert_same(
            rich_club_coefficient(g, backend="python"),
            rich_club_coefficient(g, backend="csr"),
            label="rich_club",
        )

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_path_kernels(self, g):
        assert_same(
            path_length_distribution(g, backend="python").counts,
            path_length_distribution(g, backend="csr").counts,
            label="path_counts",
        )
        assert_same(
            eccentricities(g, backend="python"),
            eccentricities(g, backend="csr"),
            label="eccentricities",
        )
        if is_connected(g, backend="python"):
            assert diameter(g, backend="python") == diameter(g, backend="csr")
        else:
            with pytest.raises(ValueError):
                diameter(g, backend="csr")

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_traversal_kernels(self, g):
        py = connected_components(g, backend="python")
        cs = connected_components(g, backend="csr")
        assert [len(c) for c in py] == [len(c) for c in cs]
        assert sorted(map(sorted_key, py)) == sorted(map(sorted_key, cs))
        assert is_connected(g, backend="python") == is_connected(g, backend="csr")

    @given(graphs())
    @settings(max_examples=25, deadline=None)
    def test_betweenness_within_tolerance(self, g):
        assert_same(
            betweenness_centrality(g, backend="python"),
            betweenness_centrality(g, backend="csr"),
            rel=1e-9,
            label="betweenness",
        )

    @given(graphs(), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_pivot_betweenness_shares_pivots(self, g, seed):
        pivots = max(1, g.num_nodes // 2)
        assert_same(
            approximate_betweenness(g, pivots, seed=seed, backend="python"),
            approximate_betweenness(g, pivots, seed=seed, backend="csr"),
            rel=1e-9,
            label="approx-betweenness",
        )


def sorted_key(component):
    return tuple(sorted(repr(node) for node in component))
