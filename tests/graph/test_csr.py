"""Tests for the CSR view: construction, immutability, cache invalidation."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.graph.csr import (
    AUTO_CSR_THRESHOLD,
    BACKENDS,
    CSRView,
    REPRO_BACKEND_ENV,
    resolve_backend,
)
from repro.graph.clustering import total_triangles


def small_graph():
    g = Graph()
    g.add_edge("a", "b", weight=2)
    g.add_edge("b", "c", weight=1.5)
    g.add_edge("a", "c")
    g.add_node("lonely")
    return g


class TestConstruction:
    def test_row_layout(self):
        view = small_graph().csr()
        assert view.num_nodes == 4
        assert view.num_edges == 3
        assert len(view.indices) == 6  # each undirected edge twice
        assert view.indptr[0] == 0 and view.indptr[-1] == 6

    def test_isolated_nodes_have_empty_rows(self):
        view = small_graph().csr()
        i = view.index["lonely"]
        assert view.neighbor_slice(i).size == 0
        assert view.degrees[i] == 0

    def test_rows_are_sorted(self):
        g = Graph()
        for v in (5, 3, 9, 1):
            g.add_edge(0, v)
        view = g.csr()
        row = view.neighbor_slice(view.index[0])
        assert list(row) == sorted(row)

    def test_node_index_roundtrip(self):
        view = small_graph().csr()
        for node in small_graph().nodes():
            assert view.nodes[view.index[node]] == node

    def test_weights_align_with_indices(self):
        g = small_graph()
        view = g.csr()
        for node in g.nodes():
            i = view.index[node]
            start, stop = int(view.indptr[i]), int(view.indptr[i + 1])
            for j, w in zip(view.indices[start:stop], view.weights[start:stop]):
                assert g.edge_weight(node, view.nodes[j]) == w

    def test_edge_arrays_each_edge_once(self):
        view = small_graph().csr()
        u, v, w = view.edge_arrays()
        assert u.size == view.num_edges
        assert (u < v).all()

    def test_empty_graph(self):
        view = Graph().csr()
        assert view.num_nodes == 0
        assert view.num_edges == 0

    def test_bfs_distances_marks_unreachable(self):
        g = small_graph()
        view = g.csr()
        distances = view.bfs_distances(view.index["a"])
        assert distances[view.index["lonely"]] == -1
        assert distances[view.index["a"]] == 0
        assert distances[view.index["b"]] == 1


class TestImmutability:
    @pytest.mark.parametrize("array", ["indptr", "indices", "weights", "degrees"])
    def test_arrays_are_read_only(self, array):
        view = small_graph().csr()
        with pytest.raises(ValueError):
            getattr(view, array)[0] = 99


class TestCacheInvalidation:
    def test_view_is_cached(self):
        g = small_graph()
        assert g.csr() is g.csr()

    def test_add_edge_invalidates(self):
        g = small_graph()
        before = g.csr()
        g.add_edge("a", "lonely")
        after = g.csr()
        assert after is not before
        assert after.num_edges == before.num_edges + 1

    def test_remove_edge_invalidates(self):
        g = small_graph()
        before = g.csr()
        g.remove_edge("a", "b")
        assert g.csr() is not before

    def test_remove_node_invalidates(self):
        g = small_graph()
        before = g.csr()
        g.remove_node("b")
        assert g.csr() is not before

    def test_set_edge_weight_invalidates(self):
        g = small_graph()
        before = g.csr()
        g.set_edge_weight("a", "b", 7.0)
        view = g.csr()
        assert view is not before
        i = view.index["a"]
        row = slice(int(view.indptr[i]), int(view.indptr[i + 1]))
        assert 7.0 in view.weights[row]

    def test_reinforcing_edge_invalidates(self):
        g = small_graph()
        before = g.csr()
        g.add_edge("a", "b")  # existing edge: weight bump mutates the graph
        assert g.csr() is not before

    def test_stale_view_never_observed_through_metrics(self):
        # Regression: a kernel must see mutations made after a cached build.
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert total_triangles(g, backend="csr") == 0
        g.add_edge(0, 2)  # closes the triangle after the view was cached
        assert total_triangles(g, backend="csr") == 1

    def test_old_view_unchanged_after_mutation(self):
        g = small_graph()
        before = g.csr()
        edges_before = before.num_edges
        g.add_edge("a", "lonely")
        assert before.num_edges == edges_before


class TestFingerprint:
    def test_csr_path_matches_dict_path(self):
        g = small_graph()
        dict_value = g.fingerprint()
        g._fingerprint_cache = None
        g.csr()  # prime the view so the CSR walk is taken
        assert g.fingerprint() == dict_value

    def test_memoized_until_mutation(self):
        g = small_graph()
        first = g.fingerprint()
        assert g.fingerprint() == first
        g.add_edge("a", "lonely")
        assert g.fingerprint() != first

    def test_insertion_order_independent_via_csr(self):
        g = Graph()
        g.add_edge(1, 2, weight=2)
        g.add_edge(2, 3)
        h = Graph()
        h.add_edge(2, 3)
        h.add_edge(1, 2, weight=2)
        g.csr()
        h.csr()
        g._fingerprint_cache = None
        h._fingerprint_cache = None
        assert g.fingerprint() == h.fingerprint()


class TestResolveBackend:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "csr")
        assert resolve_backend("python", 10**6) == "python"
        monkeypatch.setenv(REPRO_BACKEND_ENV, "python")
        assert resolve_backend("csr", 1) == "csr"

    def test_auto_uses_threshold(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert resolve_backend("auto", AUTO_CSR_THRESHOLD - 1) == "python"
        assert resolve_backend("auto", AUTO_CSR_THRESHOLD) == "csr"

    def test_auto_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "csr")
        assert resolve_backend("auto", 1) == "csr"
        monkeypatch.setenv(REPRO_BACKEND_ENV, "python")
        assert resolve_backend("auto", 10**6) == "python"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran", 10)

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "gpu")
        with pytest.raises(ValueError):
            resolve_backend("auto", 10)

    def test_backends_constant(self):
        assert BACKENDS == ("auto", "python", "csr")


class TestFromGraphDirect:
    def test_from_graph_matches_graph_csr(self):
        g = small_graph()
        direct = CSRView.from_graph(g)
        cached = g.csr()
        assert np.array_equal(direct.indptr, cached.indptr)
        assert np.array_equal(direct.indices, cached.indices)
        assert np.array_equal(direct.weights, cached.weights)
        assert direct.nodes == cached.nodes
