"""Tests for BFS traversal and connectivity."""

import pytest

from repro.graph import (
    Graph,
    bfs_distances,
    bfs_tree,
    connected_components,
    giant_component,
    is_connected,
)


class TestBfsDistances:
    def test_source_at_zero(self, triangle):
        assert bfs_distances(triangle, 0)[0] == 0

    def test_path_distances(self, path4):
        assert bfs_distances(path4, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_nodes_absent(self, two_triangles):
        distances = bfs_distances(two_triangles, 0)
        assert set(distances) == {0, 1, 2}

    def test_cutoff_limits_depth(self, path4):
        distances = bfs_distances(path4, 0, cutoff=1)
        assert distances == {0: 0, 1: 1}

    def test_missing_source_raises(self, triangle):
        with pytest.raises(KeyError):
            bfs_distances(triangle, 99)

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = bfs_distances(medium_random, 0)
        theirs = nx.single_source_shortest_path_length(to_networkx(medium_random), 0)
        assert ours == dict(theirs)


class TestBfsTree:
    def test_parents_point_toward_source(self, path4):
        parents = bfs_tree(path4, 0)
        assert parents == {1: 0, 2: 1, 3: 2}

    def test_source_absent_from_mapping(self, triangle):
        assert 0 not in bfs_tree(triangle, 0)

    def test_tree_spans_component(self, medium_random):
        parents = bfs_tree(medium_random, 0)
        assert len(parents) == medium_random.num_nodes - 1

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            bfs_tree(Graph(), 0)


class TestComponents:
    def test_single_component(self, triangle):
        components = connected_components(triangle)
        assert len(components) == 1
        assert components[0] == {0, 1, 2}

    def test_two_components_sorted_by_size(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        components = connected_components(g)
        assert len(components[0]) == 3
        assert len(components[1]) == 2

    def test_isolated_nodes_are_components(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        assert len(connected_components(g)) == 2

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = sorted(len(c) for c in connected_components(medium_random))
        theirs = sorted(len(c) for c in nx.connected_components(to_networkx(medium_random)))
        assert ours == theirs


class TestIsConnected:
    def test_connected(self, k4):
        assert is_connected(k4)

    def test_disconnected(self, two_triangles):
        assert not is_connected(two_triangles)

    def test_empty_counts_as_connected(self):
        assert is_connected(Graph())

    def test_single_node(self):
        g = Graph()
        g.add_node(0)
        assert is_connected(g)


class TestGiantComponent:
    def test_extracts_largest(self):
        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 0), (10, 11)]:
            g.add_edge(a, b)
        giant = giant_component(g)
        assert set(giant.nodes()) == {0, 1, 2}
        assert giant.num_edges == 3

    def test_keeps_weights(self):
        g = Graph()
        g.add_edge(0, 1, weight=5.0)
        assert giant_component(g).edge_weight(0, 1) == 5.0

    def test_empty_graph(self):
        assert giant_component(Graph()).num_nodes == 0

    def test_connected_graph_identity_sized(self, k4):
        assert giant_component(k4).num_nodes == 4
