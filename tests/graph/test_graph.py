"""Tests for the Graph engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph


class TestNodes:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert len(g) == 0

    def test_add_node(self):
        g = Graph()
        g.add_node(5)
        assert g.has_node(5)
        assert 5 in g
        assert g.degree(5) == 0

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(1)  # must not clear adjacency
        assert g.degree(1) == 1

    def test_add_nodes_bulk(self):
        g = Graph()
        g.add_nodes(range(5))
        assert g.num_nodes == 5

    def test_remove_node_drops_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.remove_node(1)
        assert not g.has_node(1)
        assert g.num_edges == 0
        assert g.degree(2) == 0

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_node(1)

    def test_string_node_ids(self):
        g = Graph()
        g.add_edge("AS1", "AS2")
        assert g.degree("AS1") == 1

    def test_iteration(self):
        g = Graph()
        g.add_nodes([3, 1, 2])
        assert set(g) == {1, 2, 3}


class TestEdges:
    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)
        assert g.num_edges == 1

    def test_edge_is_undirected(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_edge(2, 1)
        assert g.edge_weight(2, 1) == 1.0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_nonpositive_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 2, weight=0)
        with pytest.raises(ValueError):
            g.add_edge(1, 2, weight=-1)

    def test_reinforcement_accumulates_weight(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        g.add_edge(1, 2, weight=0.5)
        assert g.num_edges == 1
        assert g.edge_weight(1, 2) == pytest.approx(2.5)
        assert g.total_weight == pytest.approx(2.5)

    def test_set_edge_weight(self):
        g = Graph()
        g.add_edge(1, 2, weight=3.0)
        g.set_edge_weight(1, 2, 7.0)
        assert g.edge_weight(1, 2) == 7.0
        assert g.total_weight == 7.0

    def test_set_edge_weight_missing_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.set_edge_weight(1, 2, 1.0)

    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2, weight=4.0)
        g.remove_edge(2, 1)
        assert g.num_edges == 0
        assert g.total_weight == 0.0
        assert g.has_node(1)  # nodes stay

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(KeyError):
            g.remove_edge(1, 2)

    def test_edge_weight_default(self):
        g = Graph()
        g.add_node(1)
        assert g.edge_weight(1, 2, default=0.0) == 0.0
        with pytest.raises(KeyError):
            g.edge_weight(1, 2)

    def test_edges_yields_each_pair_once(self, k4):
        edges = list(k4.edges())
        assert len(edges) == 6
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == 6

    def test_weighted_edges(self):
        g = Graph()
        g.add_edge(1, 2, weight=2.0)
        g.add_edge(2, 3)
        assert sorted((min(u, v), max(u, v), w) for u, v, w in g.weighted_edges()) == [
            (1, 2, 2.0),
            (2, 3, 1.0),
        ]


class TestDegreesAndStrength:
    def test_degree_vs_strength(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.degree(1) == 2
        assert g.strength(1) == pytest.approx(3.0)

    def test_degree_sequence_sorted(self, star):
        assert star.degree_sequence() == [5, 1, 1, 1, 1, 1]

    def test_average_degree(self, k4):
        assert k4.average_degree == pytest.approx(3.0)

    def test_average_degree_empty(self):
        assert Graph().average_degree == 0.0

    def test_max_degree(self, star):
        assert star.max_degree == 5

    def test_degrees_mapping(self, triangle):
        assert triangle.degrees() == {0: 2, 1: 2, 2: 2}

    def test_strengths_mapping(self):
        g = Graph()
        g.add_edge(1, 2, weight=3.0)
        assert g.strengths() == {1: 3.0, 2: 3.0}

    def test_handshake_lemma(self, medium_random):
        assert sum(medium_random.degrees().values()) == 2 * medium_random.num_edges


class TestDerived:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(0, 99)
        assert not triangle.has_node(99)
        assert triangle.num_edges == 3

    def test_copy_preserves_weights(self):
        g = Graph(name="x")
        g.add_edge(1, 2, weight=2.5)
        clone = g.copy()
        assert clone.edge_weight(1, 2) == 2.5
        assert clone.name == "x"
        assert clone.total_weight == 2.5

    def test_subgraph_induces_edges(self, k4):
        sub = k4.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_subgraph_keeps_weights(self):
        g = Graph()
        g.add_edge(1, 2, weight=4.0)
        g.add_edge(2, 3)
        sub = g.subgraph([1, 2])
        assert sub.edge_weight(1, 2) == 4.0

    def test_subgraph_ignores_unknown_nodes(self, triangle):
        sub = triangle.subgraph([0, 1, 99])
        assert sub.num_nodes == 2
        assert not sub.has_node(99)

    def test_relabeled_consecutive(self):
        g = Graph()
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "c")
        out = g.relabeled()
        assert set(out.nodes()) == {0, 1, 2}
        assert out.num_edges == 2
        assert out.total_weight == pytest.approx(3.0)

    def test_repr_mentions_counts(self, triangle):
        assert "3 nodes" in repr(triangle)

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_arbitrary_insertion(self, edges):
        g = Graph()
        for u, v in edges:
            g.add_edge(u, v)
        # handshake lemma
        assert sum(g.degrees().values()) == 2 * g.num_edges
        # edge iteration count matches num_edges
        assert len(list(g.edges())) == g.num_edges
        # total weight equals sum over weighted_edges
        assert g.total_weight == pytest.approx(
            sum(w for _, _, w in g.weighted_edges())
        )
        # strength sums to twice total weight
        assert sum(g.strengths().values()) == pytest.approx(2 * g.total_weight)


class TestAddEdges:
    def test_bulk_matches_sequential(self):
        pairs = [(0, 1), (1, 2), (2, 3), (0, 1)]  # includes a reinforcement
        bulk = Graph()
        bulk.add_edges(pairs)
        sequential = Graph()
        for u, v in pairs:
            sequential.add_edge(u, v)
        assert bulk.fingerprint() == sequential.fingerprint()
        assert bulk.num_edges == sequential.num_edges == 3
        assert bulk.total_weight == pytest.approx(sequential.total_weight)

    def test_weighted_triples(self):
        g = Graph()
        g.add_edges([(0, 1, 2.5), (1, 2, 0.5), (0, 1, 1.0)])
        assert g.num_edges == 2
        assert g.total_weight == pytest.approx(4.0)
        assert g.edge_weight(0, 1) == pytest.approx(3.5)

    def test_mixed_pairs_and_triples(self):
        g = Graph()
        g.add_edges([(0, 1), (1, 2, 3.0)])
        assert g.edge_weight(0, 1) == pytest.approx(1.0)
        assert g.edge_weight(1, 2) == pytest.approx(3.0)

    def test_empty_iterable_is_noop(self):
        g = Graph()
        g.add_edges([])
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_self_loop_rejected_and_counters_rolled_back(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edges([(0, 1), (2, 2)])
        # The valid prefix landed; counters stayed consistent with it.
        assert sum(g.degrees().values()) == 2 * g.num_edges
        assert g.total_weight == pytest.approx(
            sum(w for _, _, w in g.weighted_edges())
        )

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edges([(0, 1, -2.0)])

    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bulk_equals_loop_on_arbitrary_sequences(self, pairs):
        bulk = Graph()
        bulk.add_edges(pairs)
        loop = Graph()
        for u, v in pairs:
            loop.add_edge(u, v)
        assert bulk.fingerprint() == loop.fingerprint()
        assert bulk.total_weight == pytest.approx(loop.total_weight)
