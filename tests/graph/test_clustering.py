"""Tests for triangles and clustering."""

import pytest

from repro.graph import (
    Graph,
    average_clustering,
    clustering_by_degree,
    clustering_spectrum,
    local_clustering,
    total_triangles,
    transitivity,
    triangles_per_node,
)


class TestTriangles:
    def test_triangle_graph(self, triangle):
        assert triangles_per_node(triangle) == {0: 1, 1: 1, 2: 1}
        assert total_triangles(triangle) == 1

    def test_k4(self, k4):
        counts = triangles_per_node(k4)
        assert all(c == 3 for c in counts.values())
        assert total_triangles(k4) == 4

    def test_k5(self, k5):
        assert total_triangles(k5) == 10

    def test_square_no_triangles(self, square):
        assert total_triangles(square) == 0

    def test_petersen_no_triangles(self, petersen):
        assert total_triangles(petersen) == 0

    def test_star_no_triangles(self, star):
        assert total_triangles(star) == 0

    def test_weights_ignored(self):
        g = Graph()
        g.add_edge(0, 1, weight=5)
        g.add_edge(1, 2, weight=5)
        g.add_edge(2, 0)
        assert total_triangles(g) == 1

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = triangles_per_node(medium_random)
        theirs = nx.triangles(to_networkx(medium_random))
        assert ours == theirs


class TestLocalClustering:
    def test_complete_graph_is_one(self, k4):
        assert all(c == 1.0 for c in local_clustering(k4).values())

    def test_low_degree_zero(self, path4):
        local = local_clustering(path4)
        assert local[0] == 0.0  # degree 1

    def test_barbell_bridge(self, barbell):
        local = local_clustering(barbell)
        # Node 2 has degree 3 (two triangle partners + bridge): 1 triangle.
        assert local[2] == pytest.approx(1.0 / 3.0)
        assert local[0] == 1.0

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = local_clustering(medium_random)
        theirs = nx.clustering(to_networkx(medium_random))
        for node in ours:
            assert ours[node] == pytest.approx(theirs[node])


class TestAverages:
    def test_average_clustering_k4(self, k4):
        assert average_clustering(k4) == 1.0

    def test_average_clustering_empty(self):
        assert average_clustering(Graph()) == 0.0

    def test_exclude_low_degree(self, barbell):
        including = average_clustering(barbell, count_low_degree=True)
        excluding = average_clustering(barbell, count_low_degree=False)
        # barbell has no degree<2 nodes, so both agree
        assert including == excluding

    def test_exclusion_changes_star_plus_triangle(self):
        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 0), (0, 3), (0, 4)]:
            g.add_edge(a, b)
        assert average_clustering(g, count_low_degree=False) > average_clustering(g)

    def test_transitivity_k4(self, k4):
        assert transitivity(k4) == 1.0

    def test_transitivity_star_zero(self, star):
        assert transitivity(star) == 0.0

    def test_transitivity_empty(self):
        assert transitivity(Graph()) == 0.0

    def test_transitivity_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        assert transitivity(medium_random) == pytest.approx(
            nx.transitivity(to_networkx(medium_random))
        )

    def test_average_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        assert average_clustering(medium_random) == pytest.approx(
            nx.average_clustering(to_networkx(medium_random))
        )


class TestSpectrum:
    def test_by_degree_exact(self, barbell):
        by_degree = clustering_by_degree(barbell)
        assert by_degree[2] == 1.0  # the four pure-triangle nodes
        assert by_degree[3] == pytest.approx(1.0 / 3.0)

    def test_degree_below_two_excluded(self, star):
        assert clustering_by_degree(star) == {5: 0.0}

    def test_spectrum_nonempty_for_clustered_graph(self, medium_random):
        spectrum = clustering_spectrum(medium_random)
        assert spectrum
        assert all(k >= 2 for k, _ in spectrum)
        assert all(0 <= c <= 1 for _, c in spectrum)

    def test_spectrum_empty_graph(self):
        assert clustering_spectrum(Graph()) == []
