"""Tests for spectral measurements."""

import math

import pytest

from repro.graph import (
    Graph,
    algebraic_connectivity,
    epidemic_threshold,
    laplacian_matrix,
    normalized_spectral_gap,
    spectral_radius,
)


class TestSpectralRadius:
    def test_complete_graph(self, k4):
        # K_n has lambda_1 = n - 1.
        assert spectral_radius(k4) == pytest.approx(3.0)

    def test_star(self, star):
        # Star with L leaves: lambda_1 = sqrt(L).
        assert spectral_radius(star) == pytest.approx(math.sqrt(5.0))

    def test_cycle(self, square):
        assert spectral_radius(square) == pytest.approx(2.0)

    def test_bounded_by_max_degree(self, medium_random):
        radius = spectral_radius(medium_random)
        degrees = list(medium_random.degrees().values())
        mean_k = sum(degrees) / len(degrees)
        assert mean_k <= radius + 1e-9 <= medium_random.max_degree + 1e-9

    def test_matches_networkx(self, medium_random):
        import networkx as nx
        import numpy as np

        from repro.graph.convert import to_networkx

        ours = spectral_radius(medium_random)
        theirs = max(np.real(nx.adjacency_spectrum(to_networkx(medium_random), weight=None)))
        assert ours == pytest.approx(float(theirs), abs=1e-6)

    def test_too_small_rejected(self):
        g = Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            spectral_radius(g)


class TestAlgebraicConnectivity:
    def test_disconnected_is_zero(self, two_triangles):
        assert algebraic_connectivity(two_triangles) == pytest.approx(0.0, abs=1e-8)

    def test_complete_graph(self, k4):
        # K_n has lambda_2 = n.
        assert algebraic_connectivity(k4) == pytest.approx(4.0)

    def test_path_is_weakly_connected(self, path4):
        fiedler = algebraic_connectivity(path4)
        assert 0 < fiedler < 1.0

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = algebraic_connectivity(medium_random)
        theirs = nx.algebraic_connectivity(
            to_networkx(medium_random), weight=None, tol=1e-10
        )
        assert ours == pytest.approx(theirs, abs=1e-4)


class TestLaplacian:
    def test_rows_sum_to_zero(self, k4):
        lap = laplacian_matrix(k4)
        import numpy as np

        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_diagonal_is_degree(self, star):
        lap = laplacian_matrix(star).toarray()
        diag = sorted(lap.diagonal(), reverse=True)
        assert diag[0] == 5.0
        assert all(d == 1.0 for d in diag[1:])


class TestSpectralGap:
    def test_complete_graph_large_gap(self, k5):
        # K_n normalized spectrum: 1 and -1/(n-1): gap = n/(n-1).
        assert normalized_spectral_gap(k5) == pytest.approx(1.25)

    def test_barbell_small_gap(self, barbell):
        assert normalized_spectral_gap(barbell) < normalized_spectral_gap_complete()

    def test_positive_on_connected(self, medium_random):
        assert normalized_spectral_gap(medium_random) > 0


def normalized_spectral_gap_complete():
    from repro.graph import Graph, normalized_spectral_gap

    g = Graph()
    for u in range(6):
        for v in range(u + 1, 6):
            g.add_edge(u, v)
    return normalized_spectral_gap(g)


class TestEpidemicThreshold:
    def test_inverse_radius(self, k4):
        assert epidemic_threshold(k4) == pytest.approx(1.0 / 3.0)

    def test_heavy_tail_lower_threshold(self):
        from repro.generators import ErdosRenyiGnm, PfpGenerator

        heavy = PfpGenerator().generate(400, seed=1)
        flat = ErdosRenyiGnm(m=heavy.num_edges).generate(400, seed=1)
        assert epidemic_threshold(heavy) < epidemic_threshold(flat)

    def test_edgeless_rejected(self):
        g = Graph()
        g.add_nodes(range(3))
        with pytest.raises(ValueError):
            epidemic_threshold(g)
