"""Tests for rich-club coefficients."""

import pytest

from repro.graph import (
    Graph,
    normalized_rich_club,
    rich_club_coefficient,
    rich_club_spectrum,
)
from repro.generators import rewired_reference


class TestRichClub:
    def test_complete_graph_all_one(self, k5):
        phi = rich_club_coefficient(k5)
        assert all(v == 1.0 for v in phi.values())

    def test_star_structure(self, star):
        phi = rich_club_coefficient(star)
        # phi(k) for k in 0..4: club is all 6 nodes at k=0 → 5 edges/15 pairs.
        assert phi[0] == pytest.approx(5 / 15)
        # For 1 <= k < 5 the club is just the hub (size 1): omitted.
        assert set(phi) == {0}

    def test_two_hubs_connected(self):
        g = Graph()
        g.add_edge("h1", "h2")
        for i in range(3):
            g.add_edge("h1", f"a{i}")
            g.add_edge("h2", f"b{i}")
        phi = rich_club_coefficient(g)
        # Club above degree 1 = the two hubs, fully connected.
        assert phi[1] == 1.0
        assert phi[3] == 1.0

    def test_empty(self):
        assert rich_club_coefficient(Graph()) == {}

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = rich_club_coefficient(medium_random)
        theirs = nx.rich_club_coefficient(to_networkx(medium_random), normalized=False)
        for k in theirs:
            assert ours[k] == pytest.approx(theirs[k])


class TestNormalized:
    def test_identity_reference_is_one(self, medium_random):
        rho = normalized_rich_club(medium_random, medium_random)
        assert all(v == pytest.approx(1.0) for v in rho.values())

    def test_against_rewired_null(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=5, seed=3)
        rho = normalized_rich_club(medium_random, null)
        assert rho  # non-empty
        assert all(v > 0 for v in rho.values())

    def test_zero_reference_thresholds_omitted(self, star, k5):
        # star's phi only defined at k=0; K5 reference has phi at 0..3.
        rho = normalized_rich_club(star, k5)
        assert set(rho) <= {0}


class TestSpectrum:
    def test_sorted_rows(self, medium_random):
        rows = rich_club_spectrum(medium_random)
        ks = [k for k, _ in rows]
        assert ks == sorted(ks)

    def test_with_reference(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=2, seed=4)
        rows = rich_club_spectrum(medium_random, reference=null)
        assert rows
