"""Tests for Barrat-style weighted metrics."""

import pytest

from repro.graph import (
    Graph,
    average_weighted_clustering,
    disparity,
    disparity_spectrum,
    local_clustering,
    weighted_average_neighbor_degree,
    weighted_clustering,
)


@pytest.fixture
def weighted_triangle_plus():
    """Triangle with one heavy edge plus a pendant."""
    g = Graph()
    g.add_edge(0, 1, weight=4.0)
    g.add_edge(1, 2, weight=1.0)
    g.add_edge(2, 0, weight=1.0)
    g.add_edge(0, 9, weight=1.0)
    return g


class TestWeightedClustering:
    def test_reduces_to_unweighted_on_unit_weights(self, k4, medium_random):
        for graph in (k4, medium_random):
            cw = weighted_clustering(graph)
            c = local_clustering(graph)
            for node in graph.nodes():
                assert cw[node] == pytest.approx(c[node]), node

    def test_heavy_triangle_edge_raises_cw(self, weighted_triangle_plus):
        g = weighted_triangle_plus
        # node 0: k=3, s=6; one triangle (1,2) with adjacent weights 4 and
        # 1 — the ordered-pair sum contributes (4+1) = 5.
        cw = weighted_clustering(g)
        assert cw[0] == pytest.approx(5 / (6 * 2))

    def test_low_degree_zero(self, weighted_triangle_plus):
        assert weighted_clustering(weighted_triangle_plus)[9] == 0.0

    def test_bounds(self, medium_random):
        for value in weighted_clustering(medium_random).values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_average(self, k4):
        assert average_weighted_clustering(k4) == pytest.approx(1.0)

    def test_average_empty(self):
        assert average_weighted_clustering(Graph()) == 0.0

    def test_matches_networkx_weighted(self):
        import networkx as nx

        from repro.generators import SerranoGenerator
        from repro.graph.convert import to_networkx

        g = SerranoGenerator().generate(200, seed=1)
        ours = weighted_clustering(g)
        # networkx "weight" clustering uses geometric means (Onnela), not
        # Barrat, so compare only the all-unit-weight case semantics:
        simple = Graph()
        for u, v in g.edges():
            simple.add_edge(u, v)
        ours_simple = weighted_clustering(simple)
        theirs = nx.clustering(to_networkx(simple))
        for node in ours_simple:
            assert ours_simple[node] == pytest.approx(theirs[node])


class TestWeightedKnn:
    def test_unit_weights_match_unweighted(self, medium_random):
        from repro.graph import average_neighbor_degree

        weighted = weighted_average_neighbor_degree(medium_random)
        plain = average_neighbor_degree(medium_random)
        for node in medium_random.nodes():
            assert weighted[node] == pytest.approx(plain[node])

    def test_heavy_link_dominates(self):
        g = Graph()
        g.add_edge("x", "hub", weight=9.0)  # hub has high degree
        g.add_edge("x", "leaf", weight=1.0)
        for i in range(4):
            g.add_edge("hub", f"h{i}")
        # unweighted knn(x) = (5 + 1)/2 = 3; weighted pulls toward hub's 5.
        weighted = weighted_average_neighbor_degree(g)
        assert weighted["x"] == pytest.approx((9 * 5 + 1 * 1) / 10)

    def test_isolated_zero(self):
        g = Graph()
        g.add_node(0)
        assert weighted_average_neighbor_degree(g)[0] == 0.0


class TestDisparity:
    def test_even_spreading(self):
        g = Graph()
        for i in range(4):
            g.add_edge("c", i, weight=2.0)
        assert disparity(g)["c"] == pytest.approx(0.25)

    def test_dominant_link(self):
        g = Graph()
        g.add_edge("c", "big", weight=98.0)
        g.add_edge("c", "small", weight=2.0)
        assert disparity(g)["c"] == pytest.approx(0.98**2 + 0.02**2)

    def test_bounds(self, medium_random):
        values = disparity(medium_random)
        for node, y in values.items():
            k = medium_random.degree(node)
            if k > 0:
                assert 1.0 / k - 1e-9 <= y <= 1.0 + 1e-9

    def test_spectrum_unit_weights_flat_at_one(self, medium_random):
        spectrum = disparity_spectrum(medium_random)
        # With unit weights Y2 = 1/k exactly, so k*Y2 = 1 everywhere.
        assert all(v == pytest.approx(1.0) for _, v in spectrum)

    def test_serrano_hubs_not_fully_even(self):
        from repro.generators import SerranoGenerator

        g = SerranoGenerator().generate(500, seed=2)
        spectrum = disparity_spectrum(g)
        # Multi-edges concentrate some bandwidth: k*Y2 > 1 somewhere.
        assert any(v > 1.05 for _, v in spectrum)
