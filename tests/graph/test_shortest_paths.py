"""Tests for path-length statistics."""

import pytest

from repro.graph import (
    Graph,
    average_path_length,
    diameter,
    eccentricities,
    path_length_distribution,
)


class TestDistribution:
    def test_triangle_all_distance_one(self, triangle):
        stats = path_length_distribution(triangle)
        assert stats.counts == {1: 6}  # 3 pairs, both directions
        assert stats.mean == 1.0
        assert stats.exact

    def test_path4_counts(self, path4):
        stats = path_length_distribution(path4)
        # ordered pairs: d=1 x6, d=2 x4, d=3 x2
        assert stats.counts == {1: 6, 2: 4, 3: 2}
        assert stats.mean == pytest.approx((6 + 8 + 6) / 12)

    def test_max_observed_is_diameter(self, path4):
        assert path_length_distribution(path4).max_observed == 3

    def test_probabilities_normalize(self, k4):
        probs = path_length_distribution(k4).probabilities()
        assert sum(p for _, p in probs) == pytest.approx(1.0)

    def test_empty_graph(self):
        stats = path_length_distribution(Graph())
        assert stats.total_pairs == 0
        assert stats.mean == 0.0

    def test_sampling_reduces_sources(self, medium_random):
        stats = path_length_distribution(medium_random, max_sources=20, seed=1)
        assert stats.sources == 20
        assert not stats.exact

    def test_sampling_estimate_close_to_exact(self, medium_random):
        exact = path_length_distribution(medium_random).mean
        sampled = path_length_distribution(medium_random, max_sources=60, seed=2).mean
        assert sampled == pytest.approx(exact, rel=0.1)

    def test_sampled_reproducible(self, medium_random):
        a = path_length_distribution(medium_random, max_sources=10, seed=3)
        b = path_length_distribution(medium_random, max_sources=10, seed=3)
        assert a.counts == b.counts

    def test_oversized_sample_is_exact(self, triangle):
        stats = path_length_distribution(triangle, max_sources=100)
        assert stats.exact


class TestAveragePathLength:
    def test_star(self, star):
        # hub-leaf pairs at 1 (x5), leaf-leaf at 2 (x10): mean over 15 pairs.
        assert average_path_length(star) == pytest.approx((5 * 1 + 10 * 2) / 15)

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = average_path_length(medium_random)
        theirs = nx.average_shortest_path_length(to_networkx(medium_random))
        assert ours == pytest.approx(theirs)


class TestEccentricityDiameter:
    def test_path_eccentricities(self, path4):
        assert eccentricities(path4) == {0: 3, 1: 2, 2: 2, 3: 3}

    def test_diameter_path(self, path4):
        assert diameter(path4) == 3

    def test_diameter_complete(self, k4):
        assert diameter(k4) == 1

    def test_diameter_disconnected_raises(self, two_triangles):
        with pytest.raises(ValueError):
            diameter(two_triangles)

    def test_diameter_empty(self):
        assert diameter(Graph()) == 0

    def test_isolated_node_eccentricity_zero(self):
        g = Graph()
        g.add_node(0)
        assert eccentricities(g) == {0: 0}

    def test_diameter_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        assert diameter(medium_random) == nx.diameter(to_networkx(medium_random))
