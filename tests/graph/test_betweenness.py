"""Tests for Brandes betweenness (exact and pivot-sampled)."""

import pytest

from repro.graph import Graph, approximate_betweenness, betweenness_centrality


class TestExact:
    def test_path_center_nodes(self, path4):
        bc = betweenness_centrality(path4, normalized=False)
        # Node 1 sits between (0,2), (0,3); node 2 between (0,3), (1,3).
        assert bc[1] == pytest.approx(2.0)
        assert bc[2] == pytest.approx(2.0)
        assert bc[0] == 0.0

    def test_star_hub(self, star):
        bc = betweenness_centrality(star, normalized=False)
        assert bc[0] == pytest.approx(10.0)  # all C(5,2) leaf pairs
        assert all(bc[leaf] == 0.0 for leaf in range(1, 6))

    def test_star_hub_normalized(self, star):
        bc = betweenness_centrality(star, normalized=True)
        assert bc[0] == pytest.approx(1.0)

    def test_complete_graph_zero(self, k4):
        bc = betweenness_centrality(k4)
        assert all(v == 0.0 for v in bc.values())

    def test_bridge_carries_load(self, barbell):
        bc = betweenness_centrality(barbell, normalized=False)
        assert bc[2] > bc[0]
        assert bc[3] > bc[4]

    def test_shortest_path_split(self, square):
        # In C4 each node lies on exactly one opposite pair's two paths,
        # getting credit 1/2 * 2 orientations / ... = 0.5 raw.
        bc = betweenness_centrality(square, normalized=False)
        assert all(v == pytest.approx(0.5) for v in bc.values())

    def test_empty_graph(self):
        assert betweenness_centrality(Graph()) == {}

    def test_matches_networkx_normalized(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = betweenness_centrality(medium_random, normalized=True)
        theirs = nx.betweenness_centrality(to_networkx(medium_random), normalized=True)
        for node in ours:
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_matches_networkx_raw(self, barbell):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = betweenness_centrality(barbell, normalized=False)
        theirs = nx.betweenness_centrality(to_networkx(barbell), normalized=False)
        for node in ours:
            assert ours[node] == pytest.approx(theirs[node])


class TestApproximate:
    def test_all_pivots_equals_exact(self, barbell):
        exact = betweenness_centrality(barbell)
        approx = approximate_betweenness(barbell, num_pivots=100, seed=1)
        for node in exact:
            assert approx[node] == pytest.approx(exact[node])

    def test_estimator_unbiased_enough(self, medium_random):
        exact = betweenness_centrality(medium_random, normalized=True)
        approx = approximate_betweenness(medium_random, num_pivots=60, seed=2)
        top_exact = sorted(exact, key=exact.get, reverse=True)[:5]
        top_approx = sorted(approx, key=approx.get, reverse=True)[:10]
        # The true top-5 should appear in the estimated top-10.
        assert set(top_exact) <= set(top_approx)

    def test_mean_value_preserved(self, medium_random):
        exact = betweenness_centrality(medium_random, normalized=True)
        approx = approximate_betweenness(medium_random, num_pivots=75, seed=3)
        mean_exact = sum(exact.values()) / len(exact)
        mean_approx = sum(approx.values()) / len(approx)
        assert mean_approx == pytest.approx(mean_exact, rel=0.25)

    def test_zero_pivots_rejected(self, star):
        with pytest.raises(ValueError):
            approximate_betweenness(star, num_pivots=0)

    def test_empty_graph(self):
        assert approximate_betweenness(Graph(), num_pivots=5) == {}

    def test_reproducible(self, medium_random):
        a = approximate_betweenness(medium_random, num_pivots=10, seed=7)
        b = approximate_betweenness(medium_random, num_pivots=10, seed=7)
        assert a == b
