"""Tests for graph serialization."""

import pytest

from repro.graph import (
    Graph,
    edge_list_lines,
    parse_edge_list_lines,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


def graphs_equal(a: Graph, b: Graph) -> bool:
    if set(a.nodes()) != set(b.nodes()):
        return False
    edges_a = {frozenset((u, v)): w for u, v, w in a.weighted_edges()}
    edges_b = {frozenset((u, v)): w for u, v, w in b.weighted_edges()}
    return edges_a == edges_b


class TestEdgeList:
    def test_roundtrip(self, tmp_path, medium_random):
        path = tmp_path / "g.txt"
        write_edge_list(medium_random, path)
        loaded = read_edge_list(path)
        assert graphs_equal(medium_random, loaded)

    def test_roundtrip_weights(self, tmp_path):
        g = Graph()
        g.add_edge(1, 2, weight=3.5)
        g.add_edge(2, 3)
        path = tmp_path / "w.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.edge_weight(1, 2) == 3.5
        assert loaded.edge_weight(2, 3) == 1.0

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list_lines(["# comment", "", "1 2", "  ", "2 3 2.0"])
        assert g.num_edges == 2
        assert g.edge_weight(2, 3) == 2.0

    def test_header_comment_written(self, tmp_path, triangle):
        path = tmp_path / "h.txt"
        write_edge_list(triangle, path)
        assert path.read_text().startswith("#")

    def test_bad_line_raises_with_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_edge_list_lines(["1 2", "1 2 3 4"])

    def test_string_ids_preserved(self):
        g = parse_edge_list_lines(["AS1 AS2"])
        assert g.has_edge("AS1", "AS2")

    def test_numeric_ids_become_ints(self):
        g = parse_edge_list_lines(["1 2"])
        assert g.has_edge(1, 2)
        assert not g.has_node("1")

    def test_duplicate_lines_reinforce(self):
        g = parse_edge_list_lines(["1 2", "1 2"])
        assert g.num_edges == 1
        assert g.edge_weight(1, 2) == 2.0

    def test_lines_without_weights(self, triangle):
        lines = list(edge_list_lines(triangle, weights=False))
        assert all(len(line.split()) == 2 for line in lines)

    def test_read_names_graph_from_stem(self, tmp_path, triangle):
        path = tmp_path / "mygraph.txt"
        write_edge_list(triangle, path)
        assert read_edge_list(path).name == "mygraph"


class TestJson:
    def test_roundtrip(self, tmp_path, medium_random):
        path = tmp_path / "g.json"
        write_json(medium_random, path)
        assert graphs_equal(medium_random, read_json(path))

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph(name="iso")
        g.add_node(1)
        g.add_edge(2, 3)
        path = tmp_path / "iso.json"
        write_json(g, path)
        loaded = read_json(path)
        assert loaded.has_node(1)
        assert loaded.name == "iso"

    def test_weights_survive(self, tmp_path):
        g = Graph()
        g.add_edge(1, 2, weight=9.5)
        path = tmp_path / "w.json"
        write_json(g, path)
        assert read_json(path).edge_weight(1, 2) == 9.5
