"""Tests for graph serialization."""

import pytest

from repro.graph import (
    Graph,
    edge_list_lines,
    parse_edge_list_lines,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


def graphs_equal(a: Graph, b: Graph) -> bool:
    if set(a.nodes()) != set(b.nodes()):
        return False
    edges_a = {frozenset((u, v)): w for u, v, w in a.weighted_edges()}
    edges_b = {frozenset((u, v)): w for u, v, w in b.weighted_edges()}
    return edges_a == edges_b


class TestEdgeList:
    def test_roundtrip(self, tmp_path, medium_random):
        path = tmp_path / "g.txt"
        write_edge_list(medium_random, path)
        loaded = read_edge_list(path)
        assert graphs_equal(medium_random, loaded)

    def test_roundtrip_weights(self, tmp_path):
        g = Graph()
        g.add_edge(1, 2, weight=3.5)
        g.add_edge(2, 3)
        path = tmp_path / "w.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.edge_weight(1, 2) == 3.5
        assert loaded.edge_weight(2, 3) == 1.0

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list_lines(["# comment", "", "1 2", "  ", "2 3 2.0"])
        assert g.num_edges == 2
        assert g.edge_weight(2, 3) == 2.0

    def test_header_comment_written(self, tmp_path, triangle):
        path = tmp_path / "h.txt"
        write_edge_list(triangle, path)
        assert path.read_text().startswith("#")

    def test_bad_line_raises_with_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_edge_list_lines(["1 2", "1 2 3 4"])

    def test_string_ids_preserved(self):
        g = parse_edge_list_lines(["AS1 AS2"])
        assert g.has_edge("AS1", "AS2")

    def test_numeric_ids_become_ints(self):
        g = parse_edge_list_lines(["1 2"])
        assert g.has_edge(1, 2)
        assert not g.has_node("1")

    def test_duplicate_lines_reinforce(self):
        g = parse_edge_list_lines(["1 2", "1 2"])
        assert g.num_edges == 1
        assert g.edge_weight(1, 2) == 2.0

    def test_lines_without_weights(self, triangle):
        lines = list(edge_list_lines(triangle, weights=False))
        assert all(len(line.split()) == 2 for line in lines)

    def test_read_names_graph_from_stem(self, tmp_path, triangle):
        path = tmp_path / "mygraph.txt"
        write_edge_list(triangle, path)
        assert read_edge_list(path).name == "mygraph"


class TestJson:
    def test_roundtrip(self, tmp_path, medium_random):
        path = tmp_path / "g.json"
        write_json(medium_random, path)
        assert graphs_equal(medium_random, read_json(path))

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph(name="iso")
        g.add_node(1)
        g.add_edge(2, 3)
        path = tmp_path / "iso.json"
        write_json(g, path)
        loaded = read_json(path)
        assert loaded.has_node(1)
        assert loaded.name == "iso"

    def test_weights_survive(self, tmp_path):
        g = Graph()
        g.add_edge(1, 2, weight=9.5)
        path = tmp_path / "w.json"
        write_json(g, path)
        assert read_json(path).edge_weight(1, 2) == 9.5


class TestIsolatedNodes:
    """Degree-zero nodes must survive every write/read cycle (they used to
    be dropped by the edge-list writer, shifting fingerprints)."""

    def test_edge_list_roundtrip_keeps_isolated_nodes(self, tmp_path):
        g = Graph(name="iso")
        g.add_nodes([0, 1, 2, "lonely", 9])
        g.add_edges([(0, 1), (1, 2)])
        path = tmp_path / "iso.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path, name="iso")
        assert graphs_equal(g, loaded)
        assert loaded.fingerprint() == g.fingerprint()

    def test_node_comment_lines_written_once_each(self):
        g = Graph()
        g.add_nodes(["a", "b"])
        g.add_edge("a", "b")
        g.add_node("only")
        lines = list(edge_list_lines(g))
        assert lines.count("# node only") == 1
        assert sum(line.startswith("# node") for line in lines) == 1

    def test_node_lines_survive_weightless_export(self):
        g = Graph()
        g.add_nodes([1, 2, 3])
        g.add_edge(1, 2)
        restored = parse_edge_list_lines(edge_list_lines(g, weights=False))
        assert set(restored.nodes()) == {1, 2, 3}

    def test_foreign_comments_still_skipped(self):
        restored = parse_edge_list_lines(
            ["# a comment", "# node 7", "# nodes are great", "1 2"]
        )
        assert set(restored.nodes()) == {7, 1, 2}
        assert restored.num_edges == 1

    def test_json_mixed_id_roundtrip_is_fingerprint_identical(self, tmp_path):
        # Regression: the writer used to coerce *both* endpoints of a mixed
        # int/str edge to str, desynchronizing edges from the node list.
        g = Graph(name="mixed")
        g.add_nodes([1, "a", 2, "iso"])
        g.add_edges([(1, "a"), (1, 2, 2.0)])
        path = tmp_path / "mixed.json"
        write_json(g, path)
        loaded = read_json(path)
        assert graphs_equal(g, loaded)
        assert loaded.fingerprint() == g.fingerprint()


class TestEmptyInputs:
    def test_empty_edge_list_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("", encoding="utf-8")
        g = read_edge_list(path)
        assert g.num_nodes == 0 and g.num_edges == 0
        assert g.name == "empty"

    def test_header_only_edge_list_file(self, tmp_path):
        path = tmp_path / "hdr.txt"
        path.write_text("# repro edge list: 0 nodes, 0 edges\n", encoding="utf-8")
        g = read_edge_list(path)
        assert g.num_nodes == 0 and g.name == "hdr"

    def test_empty_json_file(self, tmp_path):
        path = tmp_path / "blank.json"
        path.write_text("  \n", encoding="utf-8")
        g = read_json(path)
        assert g.num_nodes == 0 and g.num_edges == 0
        assert g.name == "blank"

    def test_empty_graph_roundtrips(self, tmp_path):
        g = Graph(name="void")
        write_edge_list(g, tmp_path / "void.txt")
        assert read_edge_list(tmp_path / "void.txt").num_nodes == 0
        write_json(g, tmp_path / "void.json")
        assert read_json(tmp_path / "void.json").num_nodes == 0
