"""Tests for community detection and modularity."""

import pytest

from repro.graph import (
    Graph,
    label_propagation_communities,
    modularity,
    partition_from_labels,
)


@pytest.fixture
def two_cliques():
    """Two K5s joined by a single bridge: the textbook two-community graph."""
    g = Graph()
    for base in (0, 10):
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(base + i, base + j)
    g.add_edge(0, 10)
    return g


class TestLabelPropagation:
    def test_finds_the_two_cliques(self, two_cliques):
        communities = label_propagation_communities(two_cliques, seed=1)
        assert len(communities) == 2
        assert {frozenset(c) for c in communities} == {
            frozenset(range(0, 5)),
            frozenset(range(10, 15)),
        }

    def test_covers_all_nodes(self, medium_random):
        communities = label_propagation_communities(medium_random, seed=2)
        covered = set().union(*communities)
        assert covered == set(medium_random.nodes())

    def test_isolated_nodes_singletons(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        communities = label_propagation_communities(g, seed=3)
        assert {9} in communities

    def test_largest_first(self, two_cliques):
        two_cliques.add_node(99)
        communities = label_propagation_communities(two_cliques, seed=4)
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_reproducible(self, medium_random):
        a = label_propagation_communities(medium_random, seed=5)
        b = label_propagation_communities(medium_random, seed=5)
        assert [frozenset(c) for c in a] == [frozenset(c) for c in b]

    def test_validation(self, two_cliques):
        with pytest.raises(ValueError):
            label_propagation_communities(two_cliques, max_rounds=0)


class TestModularity:
    def test_two_clique_partition_high(self, two_cliques):
        partition = [set(range(0, 5)), set(range(10, 15))]
        assert modularity(two_cliques, partition) > 0.4

    def test_everything_in_one_community_zero(self, two_cliques):
        q = modularity(two_cliques, [set(two_cliques.nodes())])
        assert q == pytest.approx(0.0)

    def test_bad_partition_negative_or_small(self, two_cliques):
        # Split each clique in half across communities: worse than chance.
        partition = [
            {0, 1, 10, 11}, {2, 3, 4, 12, 13, 14},
        ]
        good = modularity(
            two_cliques, [set(range(0, 5)), set(range(10, 15))]
        )
        assert modularity(two_cliques, partition) < good

    def test_overlapping_partition_rejected(self, two_cliques):
        with pytest.raises(ValueError, match="multiple"):
            modularity(two_cliques, [{0, 1}, {1, 2}, set(two_cliques.nodes()) - {0, 1, 2}])

    def test_partial_cover_rejected(self, two_cliques):
        with pytest.raises(ValueError, match="misses"):
            modularity(two_cliques, [{0, 1}])

    def test_empty_graph(self):
        assert modularity(Graph(), []) == 0.0

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        communities = label_propagation_communities(medium_random, seed=6)
        ours = modularity(medium_random, communities)
        theirs = nx.algorithms.community.modularity(
            to_networkx(medium_random), communities, weight=None
        )
        assert ours == pytest.approx(theirs, abs=1e-12)


class TestPartitionFromLabels:
    def test_grouping(self):
        labels = {1: 0, 2: 0, 3: 7}
        partition = partition_from_labels(labels)
        assert partition == [{1, 2}, {3}]
