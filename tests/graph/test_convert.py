"""Tests for the networkx bridge."""

import networkx as nx
import pytest

from repro.graph import Graph
from repro.graph.convert import from_networkx, to_networkx


class TestToNetworkx:
    def test_structure_preserved(self, medium_random):
        nxg = to_networkx(medium_random)
        assert nxg.number_of_nodes() == medium_random.num_nodes
        assert nxg.number_of_edges() == medium_random.num_edges

    def test_weights_preserved(self):
        g = Graph()
        g.add_edge(1, 2, weight=4.0)
        nxg = to_networkx(g)
        assert nxg[1][2]["weight"] == 4.0

    def test_isolated_nodes_preserved(self):
        g = Graph()
        g.add_node(7)
        assert 7 in to_networkx(g)

    def test_name_preserved(self):
        g = Graph(name="topo")
        assert to_networkx(g).name == "topo"


class TestFromNetworkx:
    def test_structure_preserved(self):
        nxg = nx.barbell_graph(4, 2)
        g = from_networkx(nxg)
        assert g.num_nodes == nxg.number_of_nodes()
        assert g.num_edges == nxg.number_of_edges()

    def test_weights_imported(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 2, weight=2.5)
        assert from_networkx(nxg).edge_weight(1, 2) == 2.5

    def test_missing_weight_defaults_to_one(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 2)
        assert from_networkx(nxg).edge_weight(1, 2) == 1.0

    def test_multigraph_parallel_edges_accumulate(self):
        nxg = nx.MultiGraph()
        nxg.add_edge(1, 2)
        nxg.add_edge(1, 2)
        g = from_networkx(nxg)
        assert g.num_edges == 1
        assert g.edge_weight(1, 2) == 2.0

    def test_self_loop_rejected(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 1)
        with pytest.raises(ValueError):
            from_networkx(nxg)

    def test_roundtrip(self, medium_random):
        back = from_networkx(to_networkx(medium_random))
        assert set(back.nodes()) == set(medium_random.nodes())
        ours = {frozenset((u, v)): w for u, v, w in medium_random.weighted_edges()}
        theirs = {frozenset((u, v)): w for u, v, w in back.weighted_edges()}
        assert ours == theirs
