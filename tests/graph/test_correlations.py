"""Tests for degree-degree correlations."""

import pytest

from repro.graph import (
    Graph,
    average_neighbor_degree,
    degree_assortativity,
    knn_by_degree,
    knn_spectrum,
    normalized_knn_spectrum,
)


class TestAverageNeighborDegree:
    def test_star(self, star):
        knn = average_neighbor_degree(star)
        assert knn[0] == 1.0      # hub's neighbors are leaves
        assert knn[1] == 5.0      # leaf's neighbor is the hub

    def test_regular_graph(self, k4):
        assert all(v == 3.0 for v in average_neighbor_degree(k4).values())

    def test_isolated_node_zero(self):
        g = Graph()
        g.add_node(0)
        assert average_neighbor_degree(g) == {0: 0.0}

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = average_neighbor_degree(medium_random)
        theirs = nx.average_neighbor_degree(to_networkx(medium_random))
        for node in ours:
            assert ours[node] == pytest.approx(theirs[node])


class TestKnnByDegree:
    def test_star_by_degree(self, star):
        assert knn_by_degree(star) == {1: 5.0, 5: 1.0}

    def test_disassortative_decay(self, star):
        spectrum = knn_by_degree(star)
        ks = sorted(spectrum)
        assert spectrum[ks[0]] > spectrum[ks[-1]]

    def test_empty(self):
        assert knn_by_degree(Graph()) == {}

    def test_spectrum_is_binned(self, medium_random):
        spectrum = knn_spectrum(medium_random, bins_per_decade=5)
        assert spectrum
        ks = [k for k, _ in spectrum]
        assert ks == sorted(ks)


class TestNormalizedKnn:
    def test_uncorrelated_near_one(self):
        # An ER-like graph is uncorrelated: normalized knn should hover ~1.
        from repro.generators import ErdosRenyiGnm

        g = ErdosRenyiGnm(m=2500).generate(500, seed=4)
        spectrum = normalized_knn_spectrum(g)
        values = [v for _, v in spectrum]
        assert all(0.7 < v < 1.3 for v in values)

    def test_empty(self):
        assert normalized_knn_spectrum(Graph()) == []


class TestAssortativity:
    def test_star_fully_disassortative(self, star):
        assert degree_assortativity(star) == pytest.approx(-1.0)

    def test_regular_graph_undefined_returns_zero(self, k4):
        assert degree_assortativity(k4) == 0.0

    def test_empty_graph(self):
        assert degree_assortativity(Graph()) == 0.0

    def test_assortative_example(self):
        # Two hubs joined to each other plus pendant leaves: joining equals.
        g = Graph()
        g.add_edge("h1", "h2")
        for i in range(3):
            g.add_edge("h1", f"a{i}")
            g.add_edge("h2", f"b{i}")
        # still disassortative due to hub-leaf edges, but the hub-hub edge
        # raises r above the pure-star value.
        assert degree_assortativity(g) > -1.0

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = degree_assortativity(medium_random)
        theirs = nx.degree_assortativity_coefficient(to_networkx(medium_random))
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_range(self, medium_random):
        assert -1.0 <= degree_assortativity(medium_random) <= 1.0
