"""Tests for closeness centrality."""

import pytest

from repro.graph import (
    Graph,
    approximate_closeness,
    closeness_centrality,
)


class TestExactCloseness:
    def test_star_hub_highest(self, star):
        scores = closeness_centrality(star)
        assert scores[0] == max(scores.values())
        assert scores[0] == pytest.approx(1.0)  # hub at distance 1 from all

    def test_path_center_beats_ends(self, path4):
        scores = closeness_centrality(path4)
        assert scores[1] > scores[0]
        assert scores[2] > scores[3]

    def test_complete_graph_all_one(self, k4):
        scores = closeness_centrality(k4)
        assert all(v == pytest.approx(1.0) for v in scores.values())

    def test_isolated_node_zero(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        assert closeness_centrality(g)[9] == 0.0

    def test_single_node_graph(self):
        g = Graph()
        g.add_node(0)
        assert closeness_centrality(g) == {0: 0.0}

    def test_component_correction(self, two_triangles):
        # Each triangle node reaches 2 others at distance 1 out of 5 total:
        # closeness = (2/2) * (2/5) = 0.4 under Wasserman-Faust.
        scores = closeness_centrality(two_triangles)
        assert all(v == pytest.approx(0.4) for v in scores.values())

    def test_matches_networkx(self, medium_random):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = closeness_centrality(medium_random)
        theirs = nx.closeness_centrality(to_networkx(medium_random))
        for node in ours:
            assert ours[node] == pytest.approx(theirs[node]), node

    def test_matches_networkx_disconnected(self, two_triangles):
        import networkx as nx

        from repro.graph.convert import to_networkx

        ours = closeness_centrality(two_triangles)
        theirs = nx.closeness_centrality(to_networkx(two_triangles))
        for node in ours:
            assert ours[node] == pytest.approx(theirs[node])


class TestApproximateCloseness:
    def test_sample_size_respected(self, medium_random):
        scores = approximate_closeness(medium_random, sample=20, seed=1)
        assert len(scores) == 20

    def test_sampled_values_exact(self, medium_random):
        exact = closeness_centrality(medium_random)
        sampled = approximate_closeness(medium_random, sample=15, seed=2)
        for node, value in sampled.items():
            assert value == pytest.approx(exact[node])

    def test_full_sample_is_exact(self, triangle):
        assert approximate_closeness(triangle, sample=10) == closeness_centrality(
            triangle
        )

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            approximate_closeness(triangle, sample=0)
