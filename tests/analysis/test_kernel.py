"""Tests for attachment-kernel measurement."""

import pytest

from repro.analysis import measure_attachment_kernel, snapshot_pair
from repro.generators import (
    BarabasiAlbertGenerator,
    PfpGenerator,
    PlrgGenerator,
)


class TestSnapshotPair:
    def test_prefix_property_on_ba(self):
        early, late = snapshot_pair(BarabasiAlbertGenerator(m=2), 100, 200, seed=1)
        assert early.num_nodes == 100
        assert late.num_nodes == 200
        for u, v in early.edges():
            assert late.has_edge(u, v)

    def test_structural_model_rejected(self):
        # PLRG resamples everything per size: nothing prefix-stable.
        with pytest.raises(ValueError):
            snapshot_pair(PlrgGenerator(), 100, 200, seed=2)

    def test_bad_sizes_rejected(self):
        gen = BarabasiAlbertGenerator(m=1)
        with pytest.raises(ValueError):
            snapshot_pair(gen, 200, 100, seed=3)
        with pytest.raises(ValueError):
            snapshot_pair(gen, 1, 100, seed=3)


class TestMeasurement:
    def test_ba_kernel_linear(self):
        m = measure_attachment_kernel(
            BarabasiAlbertGenerator(m=2), n1=800, n2=1600, seed=4
        )
        assert m.exponent == pytest.approx(1.0, abs=0.2)
        assert m.r_squared > 0.9
        assert m.nodes_measured == 800

    def test_pfp_kernel_superlinear_vs_ba(self):
        ba = measure_attachment_kernel(
            BarabasiAlbertGenerator(m=2), n1=800, n2=1600, seed=5
        )
        pfp = measure_attachment_kernel(PfpGenerator(), n1=800, n2=1600, seed=5)
        assert pfp.exponent > ba.exponent - 0.05

    def test_spectrum_points_positive_degrees(self):
        m = measure_attachment_kernel(
            BarabasiAlbertGenerator(m=2), n1=400, n2=800, seed=6
        )
        assert all(k >= 1 for k, _ in m.spectrum)

    def test_reproducible(self):
        gen = BarabasiAlbertGenerator(m=2)
        a = measure_attachment_kernel(gen, n1=400, n2=800, seed=7)
        b = measure_attachment_kernel(gen, n1=400, n2=800, seed=7)
        assert a.exponent == b.exponent

    def test_min_k_filter(self):
        m = measure_attachment_kernel(
            BarabasiAlbertGenerator(m=3), n1=400, n2=800, seed=8, min_k=4
        )
        assert all(k >= 4 for k, _ in m.spectrum)
