"""Tests for traceroute sampling."""

import pytest

from repro.analysis import traceroute_sample
from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm
from repro.graph import Graph, giant_component, is_connected
from repro.stats import gini_coefficient


@pytest.fixture(scope="module")
def truth():
    return giant_component(ErdosRenyiGnm(m=4000).generate(600, seed=1))


class TestTracerouteSample:
    def test_single_monitor_is_tree(self, truth):
        sampled = traceroute_sample(truth, num_monitors=1, seed=2)
        assert sampled.num_edges == sampled.num_nodes - 1
        assert is_connected(sampled)

    def test_sampled_edges_subset_of_truth(self, truth):
        sampled = traceroute_sample(truth, num_monitors=3, seed=3)
        for u, v in sampled.edges():
            assert truth.has_edge(u, v)

    def test_more_monitors_see_more_edges(self, truth):
        few = traceroute_sample(truth, num_monitors=1, seed=4)
        many = traceroute_sample(truth, num_monitors=10, seed=4)
        assert many.num_edges > few.num_edges

    def test_all_nodes_discovered_when_connected(self, truth):
        sampled = traceroute_sample(truth, num_monitors=1, seed=5)
        assert sampled.num_nodes == truth.num_nodes

    def test_bias_inflates_inequality(self, truth):
        sampled = traceroute_sample(truth, num_monitors=1, seed=6)
        true_gini = gini_coefficient(truth.degrees().values())
        sampled_gini = gini_coefficient(sampled.degrees().values())
        assert sampled_gini > true_gini

    def test_destination_subset(self, truth):
        targets = sorted(truth.nodes(), key=str)[:20]
        sampled = traceroute_sample(
            truth, num_monitors=2, destinations=targets, seed=7
        )
        assert sampled.num_nodes <= truth.num_nodes
        assert sampled.num_edges < truth.num_edges

    def test_unweighted_output(self, truth):
        sampled = traceroute_sample(truth, num_monitors=4, seed=8)
        assert all(w == 1.0 for _, _, w in sampled.weighted_edges())

    def test_heavy_tail_survives_sampling(self):
        # The converse check: a real heavy tail is NOT an artifact — the
        # sampled map of a BA graph still shows its hubs.
        truth = BarabasiAlbertGenerator(m=3).generate(600, seed=9)
        sampled = traceroute_sample(truth, num_monitors=2, seed=10)
        assert sampled.max_degree > 0.3 * truth.max_degree

    def test_validation(self, truth):
        with pytest.raises(ValueError):
            traceroute_sample(truth, num_monitors=0)
        with pytest.raises(ValueError):
            traceroute_sample(truth, num_monitors=truth.num_nodes + 1)
        with pytest.raises(ValueError):
            traceroute_sample(Graph(), num_monitors=1)

    def test_reproducible(self, truth):
        a = traceroute_sample(truth, num_monitors=3, seed=11)
        b = traceroute_sample(truth, num_monitors=3, seed=11)
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}
