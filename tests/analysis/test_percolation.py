"""Tests for the Molloy–Reed percolation criterion."""

import pytest

from repro.analysis import (
    critical_failure_fraction,
    has_giant_component_criterion,
    molloy_reed_ratio,
)
from repro.generators import ErdosRenyiGnm, PfpGenerator
from repro.graph import Graph, giant_component
from repro.resilience import AttackStrategy, removal_sweep


class TestMolloyReed:
    def test_regular_graph_exact(self, k4):
        # All degrees 3: kappa = 9/3 = 3.
        assert molloy_reed_ratio(k4) == pytest.approx(3.0)

    def test_star_value(self, star):
        # degrees [5,1,1,1,1,1]: <k> = 10/6, <k2> = 30/6 → kappa = 3.
        assert molloy_reed_ratio(star) == pytest.approx(3.0)

    def test_heavy_tail_much_larger(self):
        heavy = giant_component(PfpGenerator().generate(800, seed=1))
        flat = giant_component(
            ErdosRenyiGnm(m=heavy.num_edges).generate(800, seed=1)
        )
        assert molloy_reed_ratio(heavy) > 3 * molloy_reed_ratio(flat)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            molloy_reed_ratio(Graph())

    def test_edgeless_rejected(self):
        g = Graph()
        g.add_nodes(range(3))
        with pytest.raises(ValueError):
            molloy_reed_ratio(g)


class TestCriterion:
    def test_connected_dense_graph_passes(self, k5):
        assert has_giant_component_criterion(k5)

    def test_perfect_matching_fails(self):
        g = Graph()
        for i in range(0, 10, 2):
            g.add_edge(i, i + 1)
        # All degree 1: kappa = 1 < 2 — correctly predicts fragmentation.
        assert not has_giant_component_criterion(g)


class TestCriticalFraction:
    def test_heavy_tail_near_one(self):
        heavy = giant_component(PfpGenerator().generate(800, seed=2))
        assert critical_failure_fraction(heavy) > 0.9

    def test_er_moderate(self):
        flat = giant_component(ErdosRenyiGnm(m=1600).generate(800, seed=3))
        # kappa ≈ <k> + 1 = 5 → f_c ≈ 0.75.
        assert 0.6 < critical_failure_fraction(flat) < 0.85

    def test_prediction_consistent_with_sweep(self):
        # Removal below the predicted threshold must keep a giant.
        flat = giant_component(ErdosRenyiGnm(m=1600).generate(800, seed=4))
        predicted = critical_failure_fraction(flat)
        sweep = removal_sweep(
            flat, AttackStrategy.RANDOM, max_fraction=predicted * 0.6,
            steps=5, seed=5,
        )
        assert sweep.giant_fractions[-1] > 0.15

    def test_clamped_to_unit_interval(self, k4):
        assert 0.0 <= critical_failure_fraction(k4) <= 1.0
