"""Tests for the Molloy–Reed percolation criterion."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    critical_failure_fraction,
    has_giant_component_criterion,
    molloy_reed_ratio,
)
from repro.generators import ErdosRenyiGnm, PfpGenerator
from repro.graph import Graph, giant_component
from repro.resilience import AttackStrategy, critical_fraction, percolation_sweep, removal_sweep


class TestMolloyReed:
    def test_regular_graph_exact(self, k4):
        # All degrees 3: kappa = 9/3 = 3.
        assert molloy_reed_ratio(k4) == pytest.approx(3.0)

    def test_star_value(self, star):
        # degrees [5,1,1,1,1,1]: <k> = 10/6, <k2> = 30/6 → kappa = 3.
        assert molloy_reed_ratio(star) == pytest.approx(3.0)

    def test_heavy_tail_much_larger(self):
        heavy = giant_component(PfpGenerator().generate(800, seed=1))
        flat = giant_component(
            ErdosRenyiGnm(m=heavy.num_edges).generate(800, seed=1)
        )
        assert molloy_reed_ratio(heavy) > 3 * molloy_reed_ratio(flat)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            molloy_reed_ratio(Graph())

    def test_edgeless_rejected(self):
        g = Graph()
        g.add_nodes(range(3))
        with pytest.raises(ValueError):
            molloy_reed_ratio(g)


class TestCriterion:
    def test_connected_dense_graph_passes(self, k5):
        assert has_giant_component_criterion(k5)

    def test_perfect_matching_fails(self):
        g = Graph()
        for i in range(0, 10, 2):
            g.add_edge(i, i + 1)
        # All degree 1: kappa = 1 < 2 — correctly predicts fragmentation.
        assert not has_giant_component_criterion(g)


class TestCriticalFraction:
    def test_heavy_tail_near_one(self):
        heavy = giant_component(PfpGenerator().generate(800, seed=2))
        assert critical_failure_fraction(heavy) > 0.9

    def test_er_moderate(self):
        flat = giant_component(ErdosRenyiGnm(m=1600).generate(800, seed=3))
        # kappa ≈ <k> + 1 = 5 → f_c ≈ 0.75.
        assert 0.6 < critical_failure_fraction(flat) < 0.85

    def test_prediction_consistent_with_sweep(self):
        # Removal below the predicted threshold must keep a giant.
        flat = giant_component(ErdosRenyiGnm(m=1600).generate(800, seed=4))
        predicted = critical_failure_fraction(flat)
        sweep = removal_sweep(
            flat, AttackStrategy.RANDOM, max_fraction=predicted * 0.6,
            steps=5, seed=5,
        )
        assert sweep.giant_fractions[-1] > 0.15

    def test_clamped_to_unit_interval(self, k4):
        assert 0.0 <= critical_failure_fraction(k4) <= 1.0


@st.composite
def small_graphs_with_edges(draw):
    """Small random graphs guaranteed at least one edge (so the degree
    distribution is well defined), with isolated nodes allowed."""
    size = draw(st.integers(min_value=2, max_value=12))
    g = Graph()
    for i in range(size):
        g.add_node(i)
    i, j = draw(
        st.tuples(
            st.integers(0, size - 1), st.integers(0, size - 1)
        ).filter(lambda p: p[0] != p[1])
    )
    g.add_edge(i, j)
    for _ in range(draw(st.integers(min_value=0, max_value=2 * size))):
        u, v = draw(
            st.tuples(st.integers(0, size - 1), st.integers(0, size - 1))
        )
        if u != v:
            g.add_edge(u, v)
    return g


class TestMolloyReedProperties:
    """Property tests against exact (rational-arithmetic) enumeration."""

    @given(small_graphs_with_edges())
    @settings(max_examples=80, deadline=None)
    def test_ratio_matches_exact_enumeration(self, g):
        degrees = [g.degree(node) for node in g.nodes()]
        exact = Fraction(sum(k * k for k in degrees), sum(degrees))
        assert molloy_reed_ratio(g) == pytest.approx(float(exact), rel=1e-12)

    @given(small_graphs_with_edges())
    @settings(max_examples=80, deadline=None)
    def test_critical_fraction_closed_form(self, g):
        kappa = molloy_reed_ratio(g)
        fc = critical_failure_fraction(g)
        assert 0.0 <= fc <= 1.0
        if kappa <= 1.0:
            assert fc == 0.0
        else:
            expected = min(max(1.0 - 1.0 / (kappa - 1.0), 0.0), 1.0)
            assert fc == expected
        assert has_giant_component_criterion(g) == (kappa > 2.0)

    @given(st.integers(min_value=3, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_regular_graph_kappa_is_degree(self, size):
        # A cycle is 2-regular: <k²>/<k> = 4/2 = 2 exactly, the criterion
        # boundary.
        g = Graph()
        for i in range(size):
            g.add_edge(i, (i + 1) % size)
        assert molloy_reed_ratio(g) == pytest.approx(2.0)
        assert not has_giant_component_criterion(g)


class TestPredictionVsMeasuredCollapse:
    """The closed form must land within a band of the sweep's measured
    collapse point (configuration-model wiring → ER is the fair test)."""

    @pytest.mark.parametrize("seed", [7, 8])
    def test_er_collapse_point_in_band(self, seed):
        # Sparse ER: <k> = 3 → kappa ≈ 4 → predicted f_c ≈ 0.67, low
        # enough that a max_fraction=0.95 sweep can observe the collapse.
        g = giant_component(ErdosRenyiGnm(m=900).generate(600, seed=seed))
        predicted = critical_failure_fraction(g)
        sweep = percolation_sweep(
            g, AttackStrategy.RANDOM, max_fraction=0.95, steps=40,
            seed=seed, backend="csr",
        )
        measured = critical_fraction(sweep, collapse_threshold=0.05)
        assert measured is not None
        assert abs(measured - predicted) < 0.2, (measured, predicted)

    def test_heavy_tail_prediction_matches_no_collapse(self):
        # f_c near 1 predicts the sweep never collapses by 50% removal.
        heavy = giant_component(PfpGenerator().generate(800, seed=2))
        assert critical_failure_fraction(heavy) > 0.9
        sweep = percolation_sweep(
            heavy, AttackStrategy.RANDOM, max_fraction=0.5, steps=20, seed=3,
            backend="csr",
        )
        assert critical_fraction(sweep, collapse_threshold=0.05) is None
