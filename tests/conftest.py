"""Shared fixtures: canonical small graphs with known exact properties."""

from __future__ import annotations

import pytest

from repro.graph import Graph


def graph_from_edges(edges, name=""):
    """Build a Graph from an iterable of (u, v) or (u, v, w) tuples."""
    g = Graph(name=name)
    for edge in edges:
        if len(edge) == 3:
            g.add_edge(edge[0], edge[1], weight=edge[2])
        else:
            g.add_edge(edge[0], edge[1])
    return g


@pytest.fixture
def triangle():
    """K3: 3 nodes, 3 edges, 1 triangle, clustering 1 everywhere."""
    return graph_from_edges([(0, 1), (1, 2), (2, 0)], name="triangle")


@pytest.fixture
def square():
    """C4: 4-cycle, no triangles, one 4-cycle."""
    return graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], name="square")


@pytest.fixture
def k4():
    """Complete graph on 4 nodes: 4 triangles, 3 four-cycles."""
    return graph_from_edges(
        [(u, v) for u in range(4) for v in range(u + 1, 4)], name="k4"
    )


@pytest.fixture
def k5():
    """Complete graph on 5 nodes: 10 triangles, 15 C4s, 12 C5s."""
    return graph_from_edges(
        [(u, v) for u in range(5) for v in range(u + 1, 5)], name="k5"
    )


@pytest.fixture
def star():
    """Star with 5 leaves: hub betweenness maximal, no triangles."""
    return graph_from_edges([(0, leaf) for leaf in range(1, 6)], name="star")


@pytest.fixture
def path4():
    """Path 0-1-2-3: diameter 3, known betweenness."""
    return graph_from_edges([(0, 1), (1, 2), (2, 3)], name="path4")


@pytest.fixture
def two_triangles():
    """Two disjoint triangles: two components."""
    return graph_from_edges(
        [(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)],
        name="two-triangles",
    )


@pytest.fixture
def petersen():
    """Petersen graph: 3-regular, girth 5, 0 triangles, 0 C4s, 12 C5s."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return graph_from_edges(outer + spokes + inner, name="petersen")


@pytest.fixture
def barbell():
    """Two K3s joined by a bridge 2-3: bridge endpoints carry betweenness."""
    return graph_from_edges(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)], name="barbell"
    )


@pytest.fixture
def medium_random():
    """A 150-node preferential-attachment graph for oracle cross-checks."""
    from repro.generators import BarabasiAlbertGenerator

    return BarabasiAlbertGenerator(m=2).generate(150, seed=99)
