"""Tests for the top-level public API."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_generate_by_name(self):
        g = repro.generate("barabasi-albert", n=100, seed=1, m=2)
        assert g.num_nodes == 100

    def test_generate_unknown_model(self):
        with pytest.raises(KeyError):
            repro.generate("no-such", n=10)

    def test_summarize_exposed(self):
        g = repro.generate("glp", n=200, seed=2)
        summary = repro.summarize(g)
        assert summary.num_nodes <= 200

    def test_compare_exposed(self):
        a = repro.generate("barabasi-albert", n=200, seed=3)
        result = repro.compare(a, a)
        assert result.score == pytest.approx(0.0)

    def test_available_models(self):
        assert "serrano" in repro.available_models()

    def test_reference_map_exposed(self):
        ref = repro.reference_as_map(500)
        assert ref.num_nodes > 400

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_graph_class_exposed(self):
        g = repro.Graph()
        g.add_edge(1, 2)
        assert g.num_edges == 1
