"""Tests for distance kernels."""

import math

import pytest

from repro.geometry import NullKernel, SizeScaledKernel, WaxmanKernel


class TestNullKernel:
    def test_always_one(self):
        kernel = NullKernel()
        assert kernel.probability(0.0) == 1.0
        assert kernel.probability(1e9) == 1.0


class TestWaxmanKernel:
    def test_zero_distance_gives_beta(self):
        kernel = WaxmanKernel(alpha=0.2, beta=0.6)
        assert kernel.probability(0.0) == pytest.approx(0.6)

    def test_monotone_decay(self):
        kernel = WaxmanKernel()
        ps = [kernel.probability(d) for d in (0.0, 0.2, 0.5, 1.0)]
        assert all(ps[i] > ps[i + 1] for i in range(len(ps) - 1))

    def test_decay_length(self):
        kernel = WaxmanKernel(alpha=0.5, beta=1.0, scale=1.0)
        assert kernel.probability(0.5) == pytest.approx(math.exp(-1.0))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WaxmanKernel(alpha=0.0)
        with pytest.raises(ValueError):
            WaxmanKernel(alpha=1.5)
        with pytest.raises(ValueError):
            WaxmanKernel(beta=0.0)
        with pytest.raises(ValueError):
            WaxmanKernel(scale=0.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            WaxmanKernel().probability(-0.1)


class TestSizeScaledKernel:
    def test_cutoff_formula(self):
        kernel = SizeScaledKernel(kappa=2.0)
        assert kernel.cutoff(10.0, 20.0, 100.0) == pytest.approx(1.0)

    def test_probability_at_cutoff(self):
        kernel = SizeScaledKernel(kappa=1.0)
        d_c = kernel.cutoff(10.0, 10.0, 100.0)
        assert kernel.probability_for(d_c, 10.0, 10.0, 100.0) == pytest.approx(
            math.exp(-1.0)
        )

    def test_bigger_peers_reach_farther(self):
        kernel = SizeScaledKernel(kappa=1.0)
        small = kernel.probability_for(0.5, 10.0, 10.0, 1000.0)
        large = kernel.probability_for(0.5, 100.0, 100.0, 1000.0)
        assert large > small

    def test_underflow_guard(self):
        kernel = SizeScaledKernel(kappa=1.0)
        assert kernel.probability_for(1.0, 1e-8, 1e-8, 1e12) == 0.0

    def test_invalid_kappa_rejected(self):
        with pytest.raises(ValueError):
            SizeScaledKernel(kappa=0.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SizeScaledKernel(kappa=1.0).probability_for(-1.0, 1, 1, 1)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            SizeScaledKernel(kappa=1.0).cutoff(1, 1, 0)

    def test_context_free_call_rejected(self):
        with pytest.raises(TypeError):
            SizeScaledKernel(kappa=1.0).probability(0.5)
