"""Tests for fractal point sets."""

import pytest

from repro.geometry import (
    FractalBoxSet,
    box_counting_dimension,
    fractal_points,
    uniform_points,
)


class TestFractalBoxSet:
    def test_points_in_bounds(self):
        points = fractal_points(500, dimension=1.5, side=2.0, seed=1)
        assert all(0 <= p.x <= 2.0 and 0 <= p.y <= 2.0 for p in points)

    def test_count(self):
        assert len(fractal_points(123, seed=2)) == 123

    def test_reproducible(self):
        a = fractal_points(50, seed=3)
        b = fractal_points(50, seed=3)
        assert a == b

    def test_shared_support_across_samples(self):
        # Two sample calls on one set draw from the same surviving boxes.
        box_set = FractalBoxSet(dimension=1.0, levels=5, seed=4)
        first = box_set.sample(200)
        second = box_set.sample(200)
        cells_first = {(int(p.x * 32), int(p.y * 32)) for p in first}
        cells_second = {(int(p.x * 32), int(p.y * 32)) for p in second}
        overlap = len(cells_first & cells_second) / len(cells_first | cells_second)
        assert overlap > 0.3

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            FractalBoxSet(dimension=0.0)
        with pytest.raises(ValueError):
            FractalBoxSet(dimension=2.5)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            FractalBoxSet(levels=0)

    @pytest.mark.parametrize("dimension", [1.2, 1.5, 2.0])
    def test_box_counting_recovers_dimension(self, dimension):
        points = fractal_points(6000, dimension=dimension, levels=7, seed=7)
        measured = box_counting_dimension(points, max_level=5)
        assert measured == pytest.approx(dimension, abs=0.3)

    def test_dimension_two_is_uniform_like(self):
        frac = fractal_points(3000, dimension=2.0, seed=8)
        measured = box_counting_dimension(frac, max_level=5)
        assert measured == pytest.approx(2.0, abs=0.2)


class TestUniformPoints:
    def test_bounds_and_count(self):
        points = uniform_points(200, side=3.0, seed=9)
        assert len(points) == 200
        assert all(0 <= p.x <= 3.0 and 0 <= p.y <= 3.0 for p in points)

    def test_dimension_two(self):
        points = uniform_points(5000, seed=10)
        assert box_counting_dimension(points, max_level=5) == pytest.approx(2.0, abs=0.15)


class TestBoxCounting:
    def test_single_cluster_dimension_zero(self):
        from repro.geometry import Point

        points = [Point(0.5 + i * 1e-9, 0.5) for i in range(100)]
        assert box_counting_dimension(points, max_level=4) == pytest.approx(0.0, abs=0.1)

    def test_line_dimension_one(self):
        from repro.geometry import Point

        points = [Point(i / 4999.0, 0.5) for i in range(5000)]
        assert box_counting_dimension(points, max_level=5) == pytest.approx(1.0, abs=0.15)

    def test_too_few_points_rejected(self):
        from repro.geometry import Point

        with pytest.raises(ValueError):
            box_counting_dimension([Point(0, 0)])

    def test_bad_levels_rejected(self):
        from repro.geometry import Point

        pts = [Point(0, 0), Point(1, 1)]
        with pytest.raises(ValueError):
            box_counting_dimension(pts, min_level=3, max_level=2)
