"""Tests for the embedding plane."""

import math

import pytest

from repro.geometry import Plane, Point


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_self_zero(self):
        p = Point(0.3, 0.7)
        assert p.distance_to(p) == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0


class TestPlane:
    def test_place_and_distance(self):
        plane = Plane(side=1.0)
        plane.place("a", 0.0, 0.0)
        plane.place("b", 1.0, 0.0)
        assert plane.distance("a", "b") == 1.0

    def test_place_outside_rejected(self):
        plane = Plane(side=1.0)
        with pytest.raises(ValueError):
            plane.place("a", 1.5, 0.0)
        with pytest.raises(ValueError):
            plane.place("a", 0.0, -0.1)

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            Plane(side=0.0)

    def test_place_uniform_in_bounds(self):
        plane = Plane(side=2.0)
        for i in range(50):
            p = plane.place_uniform(i, rng_seed=i)
            assert 0 <= p.x <= 2.0 and 0 <= p.y <= 2.0

    def test_membership(self):
        plane = Plane()
        plane.place("x", 0.5, 0.5)
        assert "x" in plane
        assert "y" not in plane
        assert len(plane) == 1

    def test_position_lookup(self):
        plane = Plane()
        plane.place("x", 0.25, 0.75)
        assert plane.position("x") == Point(0.25, 0.75)
        with pytest.raises(KeyError):
            plane.position("missing")

    def test_positions_copy(self):
        plane = Plane()
        plane.place("x", 0.1, 0.1)
        snapshot = plane.positions()
        snapshot["y"] = Point(0, 0)
        assert "y" not in plane

    def test_max_distance_flat(self):
        assert Plane(side=1.0).max_distance == pytest.approx(math.sqrt(2))

    def test_torus_wraps(self):
        plane = Plane(side=1.0, torus=True)
        plane.place("a", 0.05, 0.5)
        plane.place("b", 0.95, 0.5)
        assert plane.distance("a", "b") == pytest.approx(0.1)

    def test_torus_max_distance(self):
        assert Plane(side=1.0, torus=True).max_distance == pytest.approx(
            math.sqrt(2) / 2
        )

    def test_nearest(self):
        plane = Plane()
        plane.place("q", 0.0, 0.0)
        plane.place("near", 0.1, 0.0)
        plane.place("far", 0.9, 0.9)
        assert plane.nearest("q", ["near", "far"]) == "near"

    def test_nearest_empty(self):
        plane = Plane()
        plane.place("q", 0.0, 0.0)
        assert plane.nearest("q", []) is None
