"""Meta-test: every public item in the library carries a docstring.

The documentation deliverable is enforced, not aspirational: every module,
every public class, every public function/method under ``repro`` must
explain itself.  Fails with the exact list of offenders.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MEMBER_NAMES = {
    # dataclass-generated or inherited machinery with inherited docs
    "__init__",
}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported; checked at its home module
        yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in _iter_modules():
            for name, obj in _public_members(module):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in _iter_modules():
            for name, obj in _public_members(module):
                if not inspect.isclass(obj):
                    continue
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.isfunction(method) or isinstance(method, property)):
                        continue
                    target = method.fget if isinstance(method, property) else method
                    if target is None or inspect.getdoc(target):
                        continue
                    missing.append(f"{module.__name__}.{name}.{method_name}")
        assert not missing, f"undocumented public methods: {missing}"
