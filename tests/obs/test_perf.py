"""Tests for perf telemetry: records, floors, baseline comparison."""

import json
from pathlib import Path

import pytest

from repro.obs.perf import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    build_baseline,
    check_floors,
    compare_records,
    comparison_tables,
    environment_fingerprint,
    floors_for,
    load_baseline,
    load_floors,
    load_records,
    record_path,
    sanitize_bench_id,
    trajectory_table,
    validate_record,
)

REPO_FLOORS = Path(__file__).resolve().parents[2] / "benchmarks" / "perf_floors.json"

ENVIRONMENT = {
    "git_commit": "abc1234",
    "python": "3.11.7",
    "numpy": "2.4.6",
    "platform": "linux",
    "cpu_count": 4,
    "timestamp": 1.0,
}


def make_record(bench_id, values=None, wall=1.0, rss=100_000.0):
    return BenchRecord(
        bench_id=bench_id,
        values=dict(values or {}),
        wall_seconds=wall,
        peak_rss_kb=rss,
        environment=dict(ENVIRONMENT),
    )


class TestSanitize:
    def test_passthrough_for_clean_ids(self):
        assert sanitize_bench_id("full_scale_oocore_100000") == (
            "full_scale_oocore_100000"
        )

    def test_collapses_unsafe_runs(self):
        assert sanitize_bench_id("scale[n=1e5] / csr") == "scale_n_1e5_csr"

    def test_empty_after_cleaning_raises(self):
        with pytest.raises(ValueError):
            sanitize_bench_id("///")


class TestEnvironmentFingerprint:
    def test_has_the_comparability_keys(self):
        env = environment_fingerprint()
        for key in ("git_commit", "python", "numpy", "platform", "cpu_count"):
            assert key in env
        assert env["cpu_count"] >= 1

    def test_commit_resolves_inside_this_repo(self):
        env = environment_fingerprint(REPO_FLOORS.parent)
        assert env["git_commit"] != "unknown"


class TestBenchRecord:
    def test_write_then_load_round_trips(self, tmp_path):
        record = make_record("alpha", values={"speedup": 3.5}, wall=2.25)
        path = record.write(tmp_path)
        assert path == record_path(tmp_path, "alpha")
        loaded = load_records(tmp_path)
        assert set(loaded) == {"alpha"}
        assert loaded["alpha"].values == {"speedup": 3.5}
        assert loaded["alpha"].wall_seconds == 2.25
        assert loaded["alpha"].environment["git_commit"] == "abc1234"

    def test_validate_names_every_problem_at_once(self):
        with pytest.raises(ValueError) as exc:
            validate_record({"schema": BENCH_SCHEMA_VERSION, "bench_id": "x y"})
        message = str(exc.value)
        assert "missing field 'wall_seconds'" in message
        assert "missing field 'environment'" in message
        assert "not a clean id" in message

    def test_newer_schema_refused(self):
        data = make_record("alpha").to_dict()
        data["schema"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than this build"):
            validate_record(data)

    def test_non_numeric_value_refused(self):
        data = make_record("alpha").to_dict()
        data["values"]["speedup"] = "fast"
        with pytest.raises(ValueError, match="not a number"):
            validate_record(data)

    def test_environment_keys_required(self):
        data = make_record("alpha").to_dict()
        del data["environment"]["git_commit"]
        with pytest.raises(ValueError, match="environment missing 'git_commit'"):
            validate_record(data)

    def test_load_records_raises_on_corrupt_file(self, tmp_path):
        make_record("good").write(tmp_path)
        (tmp_path / "BENCH_bad.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="BENCH_bad.json"):
            load_records(tmp_path)


class TestFloorsFile:
    def test_committed_floors_file_parses(self):
        floors = load_floors(REPO_FLOORS)
        assert "generators-median-speedup" in floors
        assert floors["resilience-median-speedup"]["min"] == 3.0

    def test_floor_needs_exactly_one_bound(self, tmp_path):
        path = tmp_path / "floors.json"
        path.write_text(json.dumps({
            "floors": {"both": {"bench": "a", "value": "v", "min": 1, "max": 2}}
        }))
        with pytest.raises(ValueError, match="exactly one of min/max"):
            load_floors(path)

    def test_top_level_floors_mapping_required(self, tmp_path):
        path = tmp_path / "floors.json"
        path.write_text(json.dumps({"floor": []}))
        with pytest.raises(ValueError, match="'floors' mapping"):
            load_floors(path)


class TestCheckFloors:
    """The committed floors file must reproduce the four gates that used
    to live as ad-hoc asserts inside the bench scripts."""

    @pytest.fixture(scope="class")
    def floors(self):
        return load_floors(REPO_FLOORS)

    @pytest.mark.parametrize(
        "bench_id, value_key, passing, failing",
        [
            ("generators", "median_speedup", 2.4, 1.9),
            ("resilience", "median_speedup", 3.6, 2.9),
            ("full_scale_serrano", "speedup", 4.0, 2.5),
            ("full_scale_oocore_100000", "measure_peak_rss_kb", 250_000, 450_000),
            ("full_scale_oocore_1000000", "measure_peak_rss_kb", 320_000, 600_000),
            ("obs_overhead", "implied_overhead", 0.01, 0.09),
        ],
    )
    def test_each_migrated_gate(self, floors, bench_id, value_key, passing, failing):
        ok = check_floors(
            {bench_id: make_record(bench_id, values={value_key: passing})},
            floors_for(bench_id, floors),
        )
        assert [c.status for c in ok] == ["ok"]
        bad = check_floors(
            {bench_id: make_record(bench_id, values={value_key: failing})},
            floors_for(bench_id, floors),
        )
        assert [c.status for c in bad] == ["violation"]
        assert bench_id in bad[0].describe()

    def test_absent_record_skips(self, floors):
        checks = check_floors({}, floors)
        assert checks and all(c.status == "skipped" for c in checks)

    def test_present_record_missing_value_is_violation(self, floors):
        checks = check_floors(
            {"generators": make_record("generators")},
            floors_for("generators", floors),
        )
        assert [c.status for c in checks] == ["violation"]
        assert "missing" in checks[0].describe()

    def test_floors_for_filters_by_bench(self, floors):
        bound = floors_for("generators", floors)
        assert set(bound) == {"generators-median-speedup"}


class TestBaselineAndCompare:
    def test_build_then_load_round_trips(self, tmp_path):
        records = {"alpha": make_record("alpha", values={"speedup": 3.0})}
        baseline = build_baseline(records, note="seed run")
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        loaded = load_baseline(path)
        assert loaded["benches"]["alpha"]["values"] == {"speedup": 3.0}
        assert loaded["note"] == "seed run"

    def test_not_a_baseline_raises(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"records": []}))
        with pytest.raises(ValueError, match="'benches' mapping"):
            load_baseline(path)

    def test_within_tolerance_is_ok(self):
        baseline = build_baseline({"a": make_record("a", wall=10.0)})
        comparison = compare_records({"a": make_record("a", wall=14.0)}, baseline)
        assert comparison.ok
        assert [d.status for d in comparison.deltas] == ["ok"]

    def test_injected_wall_regression_is_flagged(self):
        baseline = build_baseline({"a": make_record("a", wall=2.0)})
        comparison = compare_records({"a": make_record("a", wall=9.0)}, baseline)
        assert not comparison.ok
        assert [d.bench_id for d in comparison.regressions] == ["a"]
        assert "wall" in comparison.regressions[0].detail

    def test_big_ratio_tiny_absolute_is_noise(self):
        # 10x slower but only 90ms absolute: below the slack, not a regression.
        baseline = build_baseline({"a": make_record("a", wall=0.01)})
        comparison = compare_records({"a": make_record("a", wall=0.1)}, baseline)
        assert comparison.ok

    def test_rss_regression_is_flagged(self):
        baseline = build_baseline({"a": make_record("a", rss=100_000.0)})
        comparison = compare_records({"a": make_record("a", rss=180_000.0)}, baseline)
        assert not comparison.ok
        assert "rss" in comparison.regressions[0].detail

    def test_improvement_and_new_statuses(self):
        baseline = build_baseline({"a": make_record("a", wall=10.0)})
        comparison = compare_records(
            {"a": make_record("a", wall=2.0), "b": make_record("b")}, baseline
        )
        assert comparison.ok
        statuses = {d.bench_id: d.status for d in comparison.deltas}
        assert statuses == {"a": "improvement", "b": "new"}

    def test_floor_violation_fails_comparison(self):
        floors = load_floors(REPO_FLOORS)
        records = {
            "generators": make_record(
                "generators", values={"median_speedup": 1.2}
            )
        }
        baseline = build_baseline(records)
        comparison = compare_records(records, baseline, floors)
        assert not comparison.ok
        assert [v.floor for v in comparison.violations] == [
            "generators-median-speedup"
        ]

    def test_comparison_tables_shape(self):
        floors = load_floors(REPO_FLOORS)
        records = {"a": make_record("a", wall=9.0)}
        baseline = build_baseline({"a": make_record("a", wall=2.0)})
        tables = comparison_tables(compare_records(records, baseline, floors))
        titles = [title for title, _, _ in tables]
        assert titles[0] == "benchmarks vs baseline"
        assert "acceptance floors" in titles
        delta_rows = tables[0][2]
        assert delta_rows[0][0] == "a"
        assert delta_rows[0][-1] == "regression"

    def test_environment_drift_reported(self):
        # build_baseline stamps the *live* machine's fingerprint, so the
        # synthetic record environment always drifts from it.
        baseline = build_baseline({"a": make_record("a")})
        drifted = make_record("a")
        drifted.environment["cpu_count"] = 64
        tables = comparison_tables(compare_records({"a": drifted}, baseline))
        drift = [t for t in tables if t[0] == "environment drift vs baseline"]
        assert drift
        now_by_field = {row[0]: row[2] for row in drift[0][2]}
        assert now_by_field["cpu_count"] == 64

    def test_trajectory_table_pairs_values(self):
        records = {"a": make_record("a", values={"speedup": 4.0})}
        baseline = build_baseline({"a": make_record("a", values={"speedup": 2.0})})
        _, headers, rows = trajectory_table(records, baseline)
        assert headers == ["value", "current", "baseline", "ratio"]
        assert rows == [["a.speedup", 4.0, 2.0, "2.00x"]]
