"""Resource sampling: rusage brackets and fork-safe peak RSS."""

import json
import os
import subprocess
import sys

import pytest

from repro.obs import ResourceSampler, peak_rss_kb, sample_rusage


class TestSampleRusage:
    def test_sample_shape(self):
        sample = sample_rusage()
        assert set(sample) == {"max_rss_kb", "cpu_user", "cpu_system"}
        assert sample["max_rss_kb"] > 0

    def test_sampler_bracket(self):
        with ResourceSampler() as sampler:
            sum(range(100_000))
        usage = sampler.stop()
        assert usage.wall_seconds > 0
        assert usage.max_rss_kb > 0
        assert usage.cpu_seconds >= 0


class TestPeakRss:
    def test_positive_and_near_rusage_in_same_process(self):
        # In a process that never forked from a bigger one, the two
        # high-water marks agree (up to kernel accounting granularity).
        peak = peak_rss_kb()
        assert peak > 0
        assert peak == pytest.approx(sample_rusage()["max_rss_kb"], rel=0.05)

    def test_status_file_without_vmhwm_falls_back_to_rusage(self, tmp_path):
        status = tmp_path / "status"
        status.write_text("Name:\tpython\nVmRSS:\t  1234 kB\n")
        peak = peak_rss_kb(status_path=str(status))
        assert peak == sample_rusage()["max_rss_kb"]

    def test_missing_status_file_falls_back_to_rusage(self, tmp_path):
        peak = peak_rss_kb(status_path=str(tmp_path / "no-procfs"))
        assert peak == sample_rusage()["max_rss_kb"]
        assert peak > 0

    def test_vmhwm_line_is_parsed_when_present(self, tmp_path):
        status = tmp_path / "status"
        status.write_text("Name:\tpython\nVmHWM:\t  4321 kB\n")
        assert peak_rss_kb(status_path=str(status)) == 4321.0

    def test_subprocess_does_not_inherit_parent_peak(self):
        """A child forked from a deliberately bloated parent must report
        its own small peak, not the parent's (the ru_maxrss trap)."""
        ballast = bytearray(200 * 1024 * 1024)
        ballast[::4096] = b"x" * len(ballast[::4096])  # fault the pages in
        script = (
            "import json\n"
            "from repro.obs import peak_rss_kb\n"
            "print(json.dumps(peak_rss_kb()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        child_peak = json.loads(proc.stdout)
        del ballast
        # Bare interpreter + repro.obs is tens of MB; the 200 MB ballast
        # must not leak into the child's reading.
        assert child_peak < 150_000, child_peak
