"""Tests for the in-process metrics registry."""

import math

import pytest

from repro.obs import MetricsRegistry, diff_snapshots, get_registry


class TestInstruments:
    def test_counter_accumulates(self, registry):
        registry.counter("battery.units.completed").inc()
        registry.counter("battery.units.completed").inc(3)
        assert registry.counter("battery.units.completed").value == 4

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_gauge_takes_last_value(self, registry):
        registry.gauge("battery.jobs").set(4)
        registry.gauge("battery.jobs").set(2)
        assert registry.gauge("battery.jobs").value == 2

    def test_histogram_summary(self, registry):
        hist = registry.histogram("battery.unit.seconds")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_histogram_mean_is_nan_before_observations(self, registry):
        assert math.isnan(registry.histogram("empty").mean)

    def test_histogram_timer_observes_block_duration(self, registry):
        hist = registry.histogram("timed")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.total >= 0

    def test_same_name_returns_same_instrument(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")


class TestSnapshotMerge:
    def test_snapshot_is_plain_nested_dicts(self, registry):
        registry.counter("cache.hit").inc(2)
        registry.gauge("battery.jobs").set(4)
        registry.histogram("unit.s").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"cache.hit": 2}
        assert snap["gauges"] == {"battery.jobs": 4}
        assert snap["histograms"]["unit.s"] == {
            "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5,
        }

    def test_merge_adds_counters_and_combines_histograms(self, registry):
        registry.counter("cache.hit").inc(1)
        registry.histogram("unit.s").observe(2.0)
        worker = MetricsRegistry()
        worker.counter("cache.hit").inc(5)
        worker.counter("generator.steps").inc(100)
        worker.histogram("unit.s").observe(1.0)
        worker.histogram("unit.s").observe(4.0)
        registry.merge(worker.snapshot())
        assert registry.counter("cache.hit").value == 6
        assert registry.counter("generator.steps").value == 100
        hist = registry.histogram("unit.s")
        assert hist.count == 3
        assert hist.total == 7.0
        assert hist.min == 1.0
        assert hist.max == 4.0

    def test_merge_gauges_take_incoming_value(self, registry):
        registry.gauge("depth").set(1)
        worker = MetricsRegistry()
        worker.gauge("depth").set(9)
        registry.merge(worker.snapshot())
        assert registry.gauge("depth").value == 9

    def test_merge_skips_empty_histograms(self, registry):
        worker = MetricsRegistry()
        worker.histogram("never.observed")  # created but untouched
        registry.merge(worker.snapshot())
        assert registry.histogram("never.observed").count == 0
        assert registry.histogram("never.observed").min is None

    def test_merge_disjoint_keys_keeps_both_sides(self, registry):
        registry.counter("parent.only").inc(2)
        registry.histogram("parent.hist").observe(1.0)
        worker = MetricsRegistry()
        worker.counter("worker.only").inc(5)
        worker.histogram("worker.hist").observe(3.0)
        registry.merge(worker.snapshot())
        snap = registry.snapshot()
        assert snap["counters"] == {"parent.only": 2, "worker.only": 5}
        assert set(snap["histograms"]) == {"parent.hist", "worker.hist"}
        assert snap["histograms"]["worker.hist"]["count"] == 1

    def test_merge_zero_count_histogram_leaves_minmax_alone(self, registry):
        registry.histogram("unit.s").observe(2.0)
        worker = MetricsRegistry()
        worker.histogram("unit.s")  # zero observations
        registry.merge(worker.snapshot())
        hist = registry.histogram("unit.s")
        assert (hist.count, hist.min, hist.max) == (1, 2.0, 2.0)

    def test_clear_drops_everything(self, registry):
        registry.counter("a").inc()
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestDiffSnapshots:
    def test_counters_subtract(self, registry):
        registry.counter("cache.hit").inc(3)
        before = registry.snapshot()
        registry.counter("cache.hit").inc(2)
        registry.counter("cache.miss").inc(1)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"] == {"cache.hit": 2, "cache.miss": 1}

    def test_histograms_subtract_count_and_sum(self, registry):
        hist = registry.histogram("unit.s")
        hist.observe(1.0)
        before = registry.snapshot()
        hist.observe(3.0)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["histograms"]["unit.s"]["count"] == 1
        assert delta["histograms"]["unit.s"]["sum"] == 3.0

    def test_diff_disjoint_keys_treat_missing_as_zero(self, registry):
        registry.counter("old.counter").inc(3)
        before = registry.snapshot()
        registry.counter("new.counter").inc(4)
        delta = diff_snapshots(registry.snapshot(), before)
        # The untouched counter reports zero delta; the new one its count.
        assert delta["counters"] == {"old.counter": 0, "new.counter": 4}

    def test_diff_zero_count_histogram_is_zero_delta(self, registry):
        hist = registry.histogram("unit.s")
        before = registry.snapshot()
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["histograms"]["unit.s"]["count"] == 0
        assert delta["histograms"]["unit.s"]["sum"] == 0.0
        assert hist.count == 0

    def test_gauges_report_after_value(self, registry):
        registry.gauge("jobs").set(1)
        before = registry.snapshot()
        registry.gauge("jobs").set(4)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["gauges"] == {"jobs": 4}


class TestAmbient:
    def test_conftest_installs_fresh_ambient_registry(self):
        assert get_registry().snapshot()["counters"] == {}
