"""Tests for the hierarchical span tracer."""

import threading

import pytest

from repro.obs import NULL_SPAN, Span, Tracer, get_tracer, set_tracer


class TestSpanNesting:
    def test_nested_spans_record_parent_child_edges(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        # Children finish (and record) before their parents.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_a_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_timing_fields_populated(self, tracer):
        with tracer.span("work") as span:
            pass
        assert span.start > 0
        assert span.duration >= 0
        assert span.end == span.start + span.duration

    def test_attrs_and_set(self, tracer):
        with tracer.span("work", model="glp") as span:
            span.set(n=100)
        assert span.attrs == {"model": "glp", "n": 100}

    def test_exception_marks_error_and_still_records(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError"

    def test_current_tracks_innermost_open_span(self, tracer):
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", model="glp") is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN  # no per-call allocation

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as span:
            span.set(ignored=True)
        assert tracer.spans == []

    def test_ambient_default_is_disabled(self):
        # The conftest installs a disabled tracer; library code pays the
        # no-op path unless a harness opts in.
        assert get_tracer().enabled is False


class TestSpanRoundTrip:
    def test_as_dict_from_dict_round_trip(self, tracer):
        with tracer.span("unit", model="pfp") as span:
            pass
        clone = Span.from_dict(span.as_dict())
        assert clone.name == span.name
        assert clone.span_id == span.span_id
        assert clone.parent_id == span.parent_id
        assert clone.start == span.start
        assert clone.duration == span.duration
        assert clone.pid == span.pid
        assert clone.attrs == {"model": "pfp"}

    def test_span_ids_embed_pid(self, tracer):
        import os

        with tracer.span("work") as span:
            pass
        assert span.span_id.startswith(f"{os.getpid():x}-")


class TestDrainAdoptClear:
    def test_drain_empties_the_tracer(self, tracer):
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a"]
        assert tracer.spans == []

    def test_clear_discards(self, tracer):
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []

    def test_adopt_reparents_foreign_roots_under_parent(self, tracer):
        # A worker records its own little tree...
        worker = Tracer(enabled=True)
        with worker.span("unit") as unit:
            with worker.span("generate"):
                pass
        # ...and the parent grafts it under its battery span.
        with tracer.span("battery") as battery:
            adopted = tracer.adopt(
                [s.as_dict() for s in worker.spans], parent=battery
            )
        by_name = {s.name: s for s in adopted}
        assert by_name["unit"].parent_id == battery.span_id  # root re-parented
        assert by_name["generate"].parent_id == unit.span_id  # edge kept
        assert {s.name for s in tracer.spans} == {"battery", "unit", "generate"}

    def test_adopt_without_parent_keeps_roots_as_roots(self, tracer):
        worker = Tracer(enabled=True)
        with worker.span("unit"):
            pass
        (adopted,) = tracer.adopt([s.as_dict() for s in worker.spans])
        assert adopted.parent_id is None


class TestThreadSafety:
    def test_concurrent_threads_get_independent_parent_chains(self, tracer):
        errors = []

        def work(label):
            try:
                with tracer.span(f"outer-{label}") as outer:
                    with tracer.span(f"inner-{label}") as inner:
                        assert inner.parent_id == outer.span_id
                    assert outer.parent_id is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(tracer.spans) == 16


class TestAmbient:
    def test_set_tracer_returns_previous(self):
        mine = Tracer(enabled=True)
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            assert set_tracer(previous) is mine
