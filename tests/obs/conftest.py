"""Shared fixtures for observability tests."""

import pytest

from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer


@pytest.fixture(autouse=True)
def _restore_ambient_obs():
    """Every test here gets pristine ambient obs state and restores the
    previous tracer/registry afterwards, so tests never leak spans or
    counters into each other (or into the rest of the suite)."""
    previous_tracer = set_tracer(Tracer(enabled=False))
    previous_registry = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)


@pytest.fixture
def tracer():
    """An enabled tracer installed as the ambient one."""
    trc = Tracer(enabled=True)
    set_tracer(trc)
    return trc


@pytest.fixture
def registry():
    """A fresh registry installed as the ambient one."""
    reg = MetricsRegistry()
    set_registry(reg)
    return reg
