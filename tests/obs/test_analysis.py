"""Tests for journal/trace analysis (the library behind ``repro journal``)."""

import pytest

from repro.obs import Tracer, export_chrome_trace
from repro.obs.analysis import (
    UNSTAMPED,
    group_runs,
    journal_summary_tables,
    load_trace_spans,
    span_aggregate,
    summarize_run,
    tail_lines,
)


def _events(run_id="abc123"):
    """A plausible little journal: one clean run with two models."""
    return [
        {"ts": 1.0, "event": "battery_start", "run_id": run_id,
         "models": ["glp", "pfp"], "n": 500, "seeds": 1, "jobs": 2},
        {"ts": 1.1, "event": "cache_hit", "run_id": run_id, "model": "glp"},
        {"ts": 2.0, "event": "unit_finish", "run_id": run_id, "model": "glp",
         "replicate": 0, "seconds": 1.5, "worker": 11, "gen_seconds": 0.5,
         "groups": {"tail": 0.8}, "max_rss_kb": 1000.0, "cpu_seconds": 1.2},
        {"ts": 2.1, "event": "unit_retry", "run_id": run_id, "model": "pfp"},
        {"ts": 3.0, "event": "unit_finish", "run_id": run_id, "model": "pfp",
         "replicate": 0, "seconds": 2.5, "worker": 12, "gen_seconds": 1.0,
         "groups": {"tail": 1.2}, "max_rss_kb": 2000.0, "cpu_seconds": 2.0},
        {"ts": 3.1, "event": "unit_fail", "run_id": run_id, "model": "pfp"},
        {"ts": 4.0, "event": "battery_end", "run_id": run_id, "elapsed": 3.0,
         "cache": {"hits": 1, "misses": 3}},
    ]


class TestGroupRuns:
    def test_partitions_by_run_id_preserving_order(self):
        events = _events("aaa") + _events("bbb")
        runs = group_runs(events)
        assert list(runs) == ["aaa", "bbb"]
        assert len(runs["aaa"]) == len(runs["bbb"]) == 7

    def test_unstamped_events_group_under_sentinel(self):
        runs = group_runs([{"event": "battery_start"}])
        assert list(runs) == [UNSTAMPED]


class TestSummarizeRun:
    def test_counts_and_aggregates(self):
        stats = summarize_run(_events())
        assert stats["units_ok"] == 2
        assert stats["units_failed"] == 1
        assert stats["retries"] == 1
        assert stats["cache_hits"] == 1
        assert stats["elapsed"] == 3.0
        assert stats["config"]["models"] == ["glp", "pfp"]

    def test_per_model_rollup(self):
        stats = summarize_run(_events())
        assert stats["models"]["glp"] == {
            "units": 1, "seconds": 1.5, "max_rss_kb": 1000.0,
            "cpu_seconds": 1.2,
        }

    def test_groups_include_generate(self):
        stats = summarize_run(_events())
        assert stats["groups"]["generate"] == 1.5  # 0.5 + 1.0
        assert stats["groups"]["tail"] == 2.0

    def test_worker_busy_and_skew(self):
        stats = summarize_run(_events())
        assert stats["workers"] == {11: 1.5, 12: 2.5}
        assert stats["skew"] == pytest.approx(2.5 / 2.0)

    def test_empty_run_has_trivial_skew(self):
        assert summarize_run([])["skew"] == 1.0


class TestJournalSummaryTables:
    def test_one_table_set_per_run(self):
        tables = journal_summary_tables(_events("aaa") + _events("bbb"))
        titles = [title for title, _, _ in tables]
        assert "run aaa: overview" in titles
        assert "run bbb: overview" in titles
        assert "run aaa: per-model wall time" in titles
        assert "run aaa: per-group seconds" in titles
        assert "run aaa: worker busy seconds" in titles

    def test_run_filter_selects_one_run(self):
        tables = journal_summary_tables(
            _events("aaa") + _events("bbb"), run_id="bbb"
        )
        assert all(title.startswith("run bbb") for title, _, _ in tables)

    def test_unknown_run_id_names_present_runs(self):
        with pytest.raises(KeyError, match="aaa"):
            journal_summary_tables(_events("aaa"), run_id="zzz")

    def test_overview_reports_cache_hit_rate(self):
        tables = journal_summary_tables(_events())
        _, _, rows = tables[0]
        fields = dict((row[0], row[1]) for row in rows)
        assert fields["cache hits"] == 1
        assert fields["cache hit rate"] == 0.25  # 1 hit / (1 hit + 3 misses)
        assert fields["units ok/failed"] == "2/1"


class TestTailLines:
    def test_last_count_events_one_line_each(self):
        lines = tail_lines(_events(), count=2)
        assert len(lines) == 2
        assert "unit_fail" in lines[0]
        assert "battery_end" in lines[1]
        assert "run_id=abc123" in lines[1]

    def test_interesting_fields_inlined(self):
        (line,) = tail_lines(_events()[2:3], count=1)
        assert "model=glp" in line
        assert "seconds=1.5" in line
        assert "worker=11" in line


class TestTraceAnalysis:
    def _trace(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("battery"):
            for _ in range(3):
                with tracer.span("unit"):
                    pass
        return export_chrome_trace(tracer.spans, tmp_path / "trace.json")

    def test_load_trace_spans_round_trips_names_and_seconds(self, tmp_path):
        spans = load_trace_spans(self._trace(tmp_path))
        names = sorted(s["name"] for s in spans)
        assert names == ["battery", "unit", "unit", "unit"]
        for span in spans:
            assert span["duration"] >= 0
            assert "span_id" in span["args"]

    def test_load_trace_spans_rejects_non_trace(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(ValueError, match="traceEvents"):
            load_trace_spans(path)

    def test_span_aggregate_orders_by_total_time(self, tmp_path):
        spans = load_trace_spans(self._trace(tmp_path))
        title, headers, rows = span_aggregate(spans)
        assert title == "span aggregate"
        assert headers[0] == "span"
        by_name = {row[0]: row for row in rows}
        assert by_name["unit"][1] == 3  # count
        # battery encloses the units, so it leads on total time.
        assert rows[0][0] == "battery"

    def test_span_aggregate_top_truncates(self, tmp_path):
        spans = load_trace_spans(self._trace(tmp_path))
        _, _, rows = span_aggregate(spans, top=1)
        assert len(rows) == 1
