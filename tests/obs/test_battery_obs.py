"""End-to-end observability tests on the battery runner.

These are the acceptance checks for the obs subsystem: span trees nest
correctly (and export as valid Chrome traces), the metrics-registry delta
reconciles with :class:`BatteryResult`'s own record counts at jobs=1 *and*
under a process pool, workers ship resource samples home, and per-unit
profiling produces mergeable ``.pstats`` files.
"""

import pytest

from repro.core import RunJournal, run_battery
from repro.obs import (
    Tracer,
    export_chrome_trace,
    merge_profiles,
    to_chrome_trace,
    validate_chrome_trace,
)

MODELS = ["barabasi-albert", "glp"]
N = 150
FAST = {"min_tail": 20, "path_samples": 50, "path_sample_threshold": 100}


def _run(tracer=None, jobs=1, seeds=1, **kwargs):
    return run_battery(
        MODELS, n=N, seeds=seeds, jobs=jobs, tracer=tracer, **FAST, **kwargs
    )


class TestSpanTree:
    def test_serial_spans_nest_battery_unit_generate(self):
        tracer = Tracer(enabled=True)
        _run(tracer=tracer)
        by_id = {s.span_id: s for s in tracer.spans}
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        (battery,) = by_name["battery"]
        assert battery.parent_id is None
        assert len(by_name["unit"]) == len(MODELS)
        for unit in by_name["unit"]:
            assert unit.parent_id == battery.span_id
        for generate in by_name["generate"]:
            assert by_id[generate.parent_id].name == "unit"
        # Generator phases hang off generate, metric groups off the unit.
        for phase in by_name["generator.growth"]:
            assert by_id[phase.parent_id].name == "generate"
        for tail in by_name["metric.tail"]:
            assert by_id[tail.parent_id].name == "unit"

    def test_serial_trace_exports_and_validates(self, tmp_path):
        tracer = Tracer(enabled=True)
        _run(tracer=tracer)
        path = export_chrome_trace(tracer.spans, tmp_path / "trace.json")
        counts = validate_chrome_trace(path)
        assert counts["spans"] == len(tracer.spans)
        # Everything except the battery root nests under a parent.
        assert counts["nested"] == counts["spans"] - 1

    def test_parallel_spans_adopted_into_one_valid_tree(self):
        tracer = Tracer(enabled=True)
        _run(tracer=tracer, jobs=2, seeds=2)
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        (battery,) = by_name["battery"]
        units = by_name["unit"]
        assert len(units) == len(MODELS) * 2
        # Worker roots were re-parented under the coordinator's span even
        # though they carry worker pids.
        for unit in units:
            assert unit.parent_id == battery.span_id
        counts = validate_chrome_trace(to_chrome_trace(tracer.spans))
        assert counts["nested"] == counts["spans"] - 1

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        _run(tracer=tracer)
        assert tracer.spans == []


class TestMetricsReconciliation:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_registry_delta_matches_battery_result(self, jobs):
        result = _run(jobs=jobs, seeds=2)
        counters = result.metrics["counters"]
        ok_units = {
            (r.model, r.replicate)
            for r in result.records
            if r.status == "ok" and r.group == "generate"
        }
        computed_cells = [
            r for r in result.records
            if r.status == "ok" and not r.cached
            and r.group not in ("generate", "giant")
        ]
        assert counters["battery.units.completed"] == len(ok_units)
        assert counters["battery.cells.computed"] == len(computed_cells)
        assert counters.get("battery.units.failed", 0) == 0
        assert counters["generator.steps"] > 0
        assert counters["metrics.groups.computed"] == len(computed_cells)
        hist = result.metrics["histograms"]["battery.unit.seconds"]
        assert hist["count"] == len(ok_units)
        assert result.metrics["gauges"]["battery.jobs"] == jobs

    def test_serial_and_parallel_deltas_agree(self):
        serial = _run(jobs=1, seeds=2)
        parallel = _run(jobs=4, seeds=2)
        assert serial.metrics["counters"] == parallel.metrics["counters"]

    def test_cache_hits_counted_on_warm_run(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = _run(cache=cache)
        warm = _run(cache=cache)
        assert cold.metrics["counters"]["cache.miss"] > 0
        assert warm.metrics["counters"]["cache.hit"] == (
            cold.metrics["counters"]["cache.miss"]
        )
        assert warm.metrics["counters"]["battery.cells.cached"] == (
            cold.metrics["counters"]["battery.cells.computed"]
        )


class TestResourceSamples:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_generate_records_carry_rusage(self, jobs):
        result = _run(jobs=jobs)
        generates = [
            r for r in result.records
            if r.group == "generate" and r.status == "ok"
        ]
        assert generates
        for record in generates:
            assert record.max_rss_kb is not None and record.max_rss_kb > 0
            assert record.cpu_seconds is not None and record.cpu_seconds >= 0

    def test_resource_table_aggregates_per_model(self):
        result = _run()
        headers, rows = result.resource_table()
        assert headers == ["model", "units", "peak_rss_kb", "cpu_seconds"]
        assert [row[0] for row in rows] == sorted(MODELS)
        for row in rows:
            assert row[1] == 1  # one replicate each
            assert row[2] > 0


class TestRunId:
    def test_result_and_journal_events_share_one_run_id(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        result = _run(jobs=2, journal=str(journal))
        assert result.run_id
        events = RunJournal.read(journal)
        assert events
        assert {e.get("run_id") for e in events} == {result.run_id}

    def test_distinct_runs_get_distinct_ids(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        first = _run(journal=journal)
        second = _run(journal=journal)
        assert first.run_id != second.run_id
        runs = RunJournal.read_runs(journal)
        assert set(runs) == {first.run_id, second.run_id}


class TestProfiling:
    def test_profile_dir_collects_and_merges_pstats(self, tmp_path):
        profile_dir = tmp_path / "profiles"
        _run(profile_dir=str(profile_dir))
        dumps = sorted(p.name for p in profile_dir.glob("*.pstats"))
        assert dumps == ["barabasi-albert-rep0.pstats", "glp-rep0.pstats"]
        headers, rows = merge_profiles(profile_dir, top=5)
        assert headers == ["function", "calls", "tottime", "cumtime"]
        assert 0 < len(rows) <= 5

    def test_merge_profiles_empty_dir_is_empty(self, tmp_path):
        headers, rows = merge_profiles(tmp_path)
        assert rows == []
