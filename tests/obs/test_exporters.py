"""Tests for the Chrome-trace and Prometheus exporters."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    export_chrome_trace,
    render_prometheus,
    to_chrome_trace,
    validate_chrome_trace,
)


def _recorded_tree():
    """A small real span tree: battery > unit > generate."""
    tracer = Tracer(enabled=True)
    with tracer.span("battery", jobs=1) as battery:
        with tracer.span("unit", model="glp"):
            with tracer.span("generate"):
                pass
    return tracer.spans, battery


class TestToChromeTrace:
    def test_complete_events_with_microsecond_times(self):
        spans, _ = _recorded_tree()
        data = to_chrome_trace(spans)
        events = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        for event in events:
            assert event["ts"] >= 0  # origin-normalized
            assert event["dur"] >= 0
            assert "span_id" in event["args"]
        assert data["displayTimeUnit"] == "ms"

    def test_parent_ids_survive_in_args(self):
        spans, battery = _recorded_tree()
        data = to_chrome_trace(spans)
        by_name = {
            e["name"]: e for e in data["traceEvents"] if e["ph"] == "X"
        }
        assert "parent_id" not in by_name["battery"]["args"]
        assert by_name["unit"]["args"]["parent_id"] == battery.span_id

    def test_process_name_metadata_once_per_pid(self):
        spans, _ = _recorded_tree()
        data = to_chrome_trace(spans)
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"

    def test_accepts_dicts_and_span_objects(self):
        spans, _ = _recorded_tree()
        from_objects = to_chrome_trace(spans)
        from_dicts = to_chrome_trace([s.as_dict() for s in spans])
        assert from_objects == from_dicts


class TestValidateChromeTrace:
    def test_round_trip_file_validates(self, tmp_path):
        spans, _ = _recorded_tree()
        path = export_chrome_trace(spans, tmp_path / "trace.json")
        counts = validate_chrome_trace(path)
        assert counts == {"events": 3, "spans": 3, "nested": 2}

    def test_missing_parent_rejected(self):
        spans, _ = _recorded_tree()
        dicts = [s.as_dict() for s in spans]
        dicts[1]["parent_id"] = "dead-beef"
        with pytest.raises(ValueError, match="missing parent"):
            validate_chrome_trace(to_chrome_trace(dicts))

    def test_child_escaping_parent_window_rejected(self):
        spans, _ = _recorded_tree()
        dicts = [s.as_dict() for s in spans]
        by_name = {d["name"]: d for d in dicts}
        by_name["unit"]["start"] = by_name["battery"]["start"] + 100.0
        with pytest.raises(ValueError, match="escapes"):
            validate_chrome_trace(to_chrome_trace(dicts))

    def test_cross_process_parent_edges_allowed(self):
        # Tracer.adopt grafts worker spans (worker pid) under the
        # coordinator's battery span (parent pid); the validator must
        # accept those edges — only the time window is an invariant.
        parent = Tracer(enabled=True)
        worker = Tracer(enabled=True)
        with parent.span("battery") as battery:
            with worker.span("unit") as unit:
                pass
            adopted = [unit.as_dict()]
            adopted[0]["pid"] = battery.pid + 1  # simulate another process
            parent.adopt(adopted, parent=battery)
        counts = validate_chrome_trace(to_chrome_trace(parent.spans))
        assert counts["nested"] == 1

    def test_empty_tracer_produces_a_valid_empty_trace(self):
        tracer = Tracer(enabled=True)  # enabled but never spanned
        counts = validate_chrome_trace(to_chrome_trace(tracer.spans))
        assert counts == {"events": 0, "spans": 0, "nested": 0}

    def test_not_a_trace_rejected(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"wrong": []})

    def test_malformed_event_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "half-baked"}]}
            )


class TestRenderPrometheus:
    def test_counters_gauges_histograms_rendered(self):
        registry = MetricsRegistry()
        registry.counter("battery.units.completed").inc(4)
        registry.gauge("battery.jobs").set(2)
        registry.histogram("battery.unit.seconds").observe(0.25)
        text = render_prometheus(registry)
        assert "# TYPE battery_units_completed counter" in text
        assert "battery_units_completed 4" in text
        assert "battery_jobs 2" in text
        assert "# TYPE battery_unit_seconds summary" in text
        assert "battery_unit_seconds_count 1" in text
        assert "battery_unit_seconds_sum 0.25" in text

    def test_dots_and_oddities_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit-rate:v2").inc()
        text = render_prometheus(registry)
        assert "cache_hit_rate_v2 1" in text

    def test_accepts_plain_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(7)
        assert render_prometheus(registry.snapshot()) == render_prometheus(
            registry
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
