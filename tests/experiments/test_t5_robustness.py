"""Experiment T5: the robustness & redundancy ranking table.

The acceptance bar: ``repro experiment t5`` emits a ranking table covering
all 12 registry models, the battery cells are cache-neutral across
backends, and the harness threads every battery knob (jobs, cache,
backend, engine) like T1 does.
"""

import math

import pytest

from repro.cli import main
from repro.experiments import ROSTER_ORDER, run_t5
from repro.experiments.t5_robustness import ROBUSTNESS_FIELDS

SMALL = dict(n=250, seeds=1, backend="csr")


@pytest.fixture(scope="module")
def full_roster_result():
    return run_t5(**SMALL)


class TestT5:
    def test_ranking_covers_all_twelve_models(self, full_roster_result):
        headers, rows = full_roster_result.tables[
            "T5 ranking (closest to reference first)"
        ]
        assert headers == ["model", "score"]
        assert len(rows) == len(ROSTER_ORDER) == 12
        assert {row[0] for row in rows} == set(ROSTER_ORDER)
        scores = [row[1] for row in rows]
        assert all(not math.isnan(s) for s in scores)
        assert scores == sorted(scores)  # best (lowest divergence) first

    def test_battery_table_has_reference_row_and_all_fields(self, full_roster_result):
        headers, rows = full_roster_result.tables[
            "robustness battery (seed-averaged, vs reference)"
        ]
        assert headers == ["model"] + list(ROBUSTNESS_FIELDS) + ["score"]
        assert rows[0][0] == "reference"
        assert rows[0][-1] == 0.0
        assert len(rows) == 13

    def test_notes_carry_ranks_and_telemetry(self, full_roster_result):
        notes = full_roster_result.notes
        ranks = [key for key in notes if key.startswith("rank_")]
        assert len(ranks) == 12
        assert notes["battery_failures"] == 0
        for key in ROBUSTNESS_FIELDS:
            assert f"reference_{key}" in notes

    def test_heavy_tail_asymmetry_measured(self, full_roster_result):
        # The headline physics: BA survives random failure far better than
        # targeted attack, at any size.
        headers, rows = full_roster_result.tables[
            "robustness battery (seed-averaged, vs reference)"
        ]
        by_name = {row[0]: dict(zip(headers[1:], row[1:])) for row in rows}
        ba = by_name["barabasi-albert"]
        assert ba["random_survival"] > ba["attack_survival"]

    def test_model_subset_via_comma_string(self):
        result = run_t5(models="erdos-renyi,barabasi-albert", **SMALL)
        headers, rows = result.tables["T5 ranking (closest to reference first)"]
        assert {row[0] for row in rows} == {"erdos-renyi", "barabasi-albert"}

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            run_t5(models="no-such-model", **SMALL)

    def test_cache_resume_bit_identical(self, tmp_path):
        cache = tmp_path / "cells"
        kwargs = dict(models="barabasi-albert,erdos-renyi", cache_dir=str(cache))
        cold = run_t5(**SMALL, **kwargs)
        assert cold.notes["cache_misses"] == 2
        warm = run_t5(**SMALL, **kwargs)
        assert warm.notes["cache_misses"] == 0
        assert warm.notes["cache_hits"] == 2
        _, cold_rows = cold.tables["robustness battery (seed-averaged, vs reference)"]
        _, warm_rows = warm.tables["robustness battery (seed-averaged, vs reference)"]
        for a, b in zip(cold_rows, warm_rows):
            assert a[0] == b[0]
            for x, y in zip(a[1:], b[1:]):
                if isinstance(x, float) and math.isnan(x):
                    assert math.isnan(y)
                else:
                    assert x == y

    def test_jobs_parity(self):
        serial = run_t5(models="barabasi-albert", **SMALL)
        parallel = run_t5(models="barabasi-albert", jobs=2, **SMALL)
        _, s_rows = serial.tables["T5 ranking (closest to reference first)"]
        _, p_rows = parallel.tables["T5 ranking (closest to reference first)"]
        assert s_rows == p_rows


class TestT5Cli:
    def test_experiment_t5_emits_ranking(self, capsys):
        code = main([
            "experiment", "t5",
            "--param", "n=250", "--param", "seeds=1",
            "--param", "models=barabasi-albert,erdos-renyi",
            "--backend", "csr", "--engine", "vector", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "T5 ranking (closest to reference first)" in out
        assert "barabasi-albert" in out and "erdos-renyi" in out
        assert "robustness battery" in out
