"""Smoke tests for the extension experiments (A1–A7) at miniature scale."""

import math

import pytest

from repro.experiments import (
    run_a1,
    run_a2,
    run_a3,
    run_a4,
    run_a5,
    run_a6,
    run_a7,
    run_a8,
    run_a9,
)


class TestA1:
    def test_consolidation_trajectory(self):
        result = run_a1(n=300, rounds=3, num_flows=300)
        assert result.experiment_id == "A1"
        headers, rows = result.tables["consolidation trajectory"]
        assert len(rows) == 3
        assert "provider_shrink_ratio" in result.notes
        assert 0 < result.notes["as_survival_ratio"] <= 1


class TestA2:
    def test_r_sweep_rows(self):
        result = run_a2(n=300, rs=(0.0, 0.8))
        headers, rows = result.tables["r sweep"]
        assert [row[0] for row in rows] == [0.0, 0.8]
        assert result.notes["degree_tuning_ratio"] > 0


class TestA3:
    def test_sweeps_and_summary(self):
        result = run_a3(n=250, steps=5, models=["erdos-renyi"])
        headers, rows = result.tables["tolerance summary"]
        assert len(rows) == 2  # reference + ER
        # random + targeted series per entry
        assert len(result.series) == 4


class TestA4:
    def test_onset_ordering_notes(self):
        result = run_a4(n=300, betas=(0.02, 0.1, 0.4), steps=40, runs=1)
        assert "reference_onset_beta" in result.notes
        assert "er_onset_beta" in result.notes
        headers, rows = result.tables["thresholds"]
        for row in rows:
            assert row[1] > 0  # lambda1 positive


class TestA5:
    def test_inflation_rows(self):
        result = run_a5(n=300, num_destinations=6, models=["glp"])
        headers, rows = result.tables["inflation summary"]
        assert len(rows) == 2
        for row in rows:
            assert row[2] >= row[1] - 1e-9  # policy >= shortest


class TestA6:
    def test_nulls_table(self):
        result = run_a6(n=400, swaps_per_edge=3)
        headers, rows = result.tables["metric survival under dK nulls"]
        metrics = [row[0] for row in rows]
        assert "assortativity" in metrics
        # 2K matches template assortativity tightly even at small n.
        assert abs(
            result.notes["assortativity_2k"] - result.notes["assortativity_template"]
        ) < 0.05


class TestA7:
    def test_scaling_rows(self):
        result = run_a7(sizes=(150, 300), destinations_per_size=2)
        headers, rows = result.tables["convergence scaling"]
        assert len(rows) == 2
        assert result.notes["rounds_smallest"] >= 1
        assert result.notes["message_scaling_exponent"] > 0


class TestA8:
    def test_kernels_measured(self):
        from repro.generators import BarabasiAlbertGenerator

        result = run_a8(
            n1=300, n2=600,
            subjects={"barabasi-albert": BarabasiAlbertGenerator(m=2)},
        )
        headers, rows = result.tables["measured kernels"]
        assert len(rows) == 1
        assert result.notes["kernel_barabasi-albert"] == pytest.approx(1.0, abs=0.35)


class TestA9:
    def test_adequacy_summary(self):
        result = run_a9(n=300, num_flows=400)
        assert -1.0 <= result.notes["node_rank_correlation"] <= 1.0
        assert 0.0 <= result.notes["fat_link_volume_share"] <= 1.0
        headers, rows = result.tables["adequacy summary"]
        assert len(rows) == 6


class TestA10:
    def test_bias_table(self):
        from repro.experiments import run_a10

        result = run_a10(n=400, mean_degree=12.0, monitor_counts=(1, 8))
        headers, rows = result.tables["sampled vs true degree statistics"]
        assert len(rows) == 3  # truth + two monitor counts
        assert "few_monitor_gamma" in result.notes
        assert result.notes["few_monitor_gini"] > 0


class TestA11:
    def test_modularity_table(self):
        from repro.experiments import run_a11

        result = run_a11(n=300, models=["transit-stub", "barabasi-albert"])
        headers, rows = result.tables["modularity by model"]
        assert len(rows) == 3  # reference + 2 models
        assert result.notes["q_transit_stub"] > result.notes["q_barabasi_albert"]


class TestA12:
    def test_capture_monotone(self):
        from repro.experiments import run_a12

        result = run_a12(n=400, victims_per_class=2)
        assert result.notes["tier1_capture"] >= result.notes["stub_capture"]
        headers, rows = result.tables["capture by attacker class"]
        assert len(rows) == 3
