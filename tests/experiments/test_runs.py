"""Smoke tests for every experiment harness at miniature scale.

The benchmarks run the experiments at paper scale and assert the full
expected shapes; these tests only verify that each harness executes,
produces its declared tables/series/notes, and respects its parameters —
fast enough for the unit suite.
"""

import math

import pytest

from repro.experiments import (
    run_f1,
    run_f2,
    run_f3,
    run_f4,
    run_f5,
    run_f6,
    run_f7,
    run_f8,
    run_f9,
    run_t1,
    run_t2,
    run_t3,
    run_t4,
)

SMALL_MODELS = ["barabasi-albert", "glp", "serrano"]


class TestF1:
    def test_runs_and_fits(self):
        result = run_f1()
        assert result.experiment_id == "F1"
        assert abs(result.notes["alpha"] - 0.036) < 0.005
        assert len(result.series) == 3

    def test_custom_config(self):
        from repro.datasets import TimelineConfig

        result = run_f1(TimelineConfig(months=24, noise_sigma=0.0))
        assert result.notes["alpha"] == pytest.approx(0.036, abs=1e-9)


class TestF2:
    def test_tables_and_series(self):
        result = run_f2(n=300, seed=1, models=SMALL_MODELS)
        assert "fitted degree exponents" in result.tables
        # reference + 3 models
        assert len(result.series) == 4
        headers, rows = result.tables["fitted degree exponents"]
        assert len(rows) == 4


class TestT1:
    def test_ranking_complete(self):
        result = run_t1(n=300, seeds=1, models=SMALL_MODELS)
        headers, ranking = result.tables["ranking (best first)"]
        assert len(ranking) == 3
        scores = [score for _, score in ranking]
        assert scores == sorted(scores)

    def test_reference_row_first(self):
        result = run_t1(n=300, seeds=1, models=["glp"])
        headers, rows = result.tables[
            "model comparison (last-seed metrics, seed-averaged score)"
        ]
        assert rows[0][0] == "reference"
        assert rows[0][-2] == 0.0


class TestSpectraExperiments:
    def test_f3(self):
        result = run_f3(n=300, seed=2, models=["barabasi-albert", "serrano"])
        assert "reference_decay_slope" in result.notes
        assert len(result.series) == 3

    def test_f4(self):
        result = run_f4(n=300, seed=3, models=["serrano", "serrano-distance"])
        assert "distance_disassortativity_shift" in result.notes

    def test_f5(self):
        result = run_f5(n=300, pivots=50, seed=4, models=["erdos-renyi", "serrano"])
        assert "serrano_vs_er_spread_ratio" in result.notes

    def test_f6(self):
        result = run_f6(n=300, seed=5, models=["barabasi-albert", "serrano-distance"])
        assert result.notes["ba_coreness"] == 2.0

    def test_f7(self):
        result = run_f7(n=300, seed=6, models=["barabasi-albert", "pfp"])
        assert "pfp_minus_ba_rho" in result.notes

    def test_f8(self):
        result = run_f8(n=300, max_sources=80, seed=7, models=["waxman", "serrano"])
        assert result.notes["reference_mean_path"] > 1.0
        assert result.notes["waxman_vs_reference_path_ratio"] > 0.8


class TestF9:
    def test_scaling_fit(self):
        result = run_f9(n=500, seed=8)
        assert 0.5 < result.notes["mu_fitted"] <= 1.1
        assert result.notes["mu_predicted"] == pytest.approx(0.75)

    def test_custom_generator(self):
        from repro.generators import SerranoGenerator

        gen = SerranoGenerator(alpha=0.04, beta=0.03, delta_prime=0.05)
        result = run_f9(n=300, seed=9, generator=gen)
        assert result.notes["mu_predicted"] == pytest.approx(0.6)


class TestT2:
    def test_exponents_ordered(self):
        result = run_t2(sizes=(150, 300, 600), seeds=1, include_distance=False)
        assert result.notes["xi_3_without"] < result.notes["xi_4_without"]
        headers, rows = result.tables["cycle scaling exponents"]
        assert rows[0][0].startswith("Internet")

    def test_distance_arm_included(self):
        result = run_t2(sizes=(150, 300), seeds=1, include_distance=True)
        assert "xi_3_with" in result.notes


class TestT3:
    def test_market_tables(self):
        result = run_t3(n=250, num_flows=200, seed=9, models=["glp"])
        assert "market summary" in result.tables
        assert "serrano: per-tier books" in result.tables
        assert "serrano_hhi" in result.notes


class TestT4:
    def test_ablation_rows(self):
        result = run_t4(n=300, seeds=1)
        headers, rows = result.tables["distance ablation (seed means)"]
        metrics = [row[0] for row in rows]
        assert "assortativity" in metrics
        assert "gamma_shift" in result.notes
