"""Tests for ExperimentResult plumbing."""

from repro.experiments import ExperimentResult


class TestExperimentResult:
    def test_add_table_and_render(self):
        result = ExperimentResult(experiment_id="TX", title="demo")
        result.add_table("numbers", ["a", "b"], [[1, 2.5]])
        text = result.render()
        assert "== TX: demo ==" in text
        assert "[table] numbers" in text
        assert "2.5" in text

    def test_add_series_and_render(self):
        result = ExperimentResult(experiment_id="FX", title="demo")
        result.add_series("curve", [(1.0, 0.5), (2.0, 0.25)])
        text = result.render()
        assert "[series] curve" in text
        assert "0.25" in text

    def test_series_downsampled_in_render(self):
        result = ExperimentResult(experiment_id="FX", title="demo")
        result.add_series("long", [(float(i), float(i)) for i in range(500)])
        text = result.render(max_series_points=10)
        lines = [l for l in text.splitlines() if l and l[0].isdigit()]
        assert len(lines) <= 60

    def test_notes_rendered(self):
        result = ExperimentResult(experiment_id="TX", title="demo")
        result.notes["gamma"] = 2.2
        assert "gamma" in result.render()

    def test_str_is_render(self):
        result = ExperimentResult(experiment_id="TX", title="demo")
        assert str(result) == result.render()


class TestRosters:
    def test_standard_roster_matches_order(self):
        from repro.experiments import ROSTER_ORDER, standard_roster

        roster = standard_roster(500)
        assert set(roster) == set(ROSTER_ORDER)

    def test_heavy_tail_subset(self):
        from repro.experiments import heavy_tail_roster, standard_roster

        heavy = heavy_tail_roster(500)
        full = standard_roster(500)
        assert set(heavy) <= set(full)
        assert "erdos-renyi" not in heavy
        assert "serrano" in heavy

    def test_roster_generators_work_small(self):
        from repro.experiments import standard_roster

        roster = standard_roster(120)
        for name, gen in roster.items():
            g = gen.generate(120, seed=3)
            assert g.num_nodes > 80, name
