"""A3 end-to-end through the battery runner.

The attack experiment's tolerance scalars are battery units now, so it
inherits the runner's whole contract: ``jobs=2`` fan-out, journaled unit
events, a raising sweep unit costing exactly its own row (failure
containment), and cache-resume recomputing only the failed cells.
"""

import math

from repro.core import RunJournal
from repro.experiments import run_a3
from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm
from repro.stats.rng import derive_seed

from ..core.test_fault_tolerance import CrashingGenerator

N = 150
SEED = 29


def crash_seed(base: int = SEED, n: int = N) -> int:
    """The derived unit seed run_a3's single replicate gets for crashy."""
    return derive_seed("battery-unit", "crashy", {"m": 2}, n, base, 0)


def tolerance_rows(result):
    headers, rows = result.tables["tolerance summary"]
    return {row[0]: row for row in rows}


class TestA3Battery:
    def test_jobs2_journal_and_failure_containment(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        models = {
            "crashy": CrashingGenerator(fail_seeds=(crash_seed(),)),
            "erdos-renyi": ErdosRenyiGnm(m=2 * N),
            "barabasi-albert": BarabasiAlbertGenerator(m=2),
        }
        result = run_a3(
            n=N, steps=4, seed=SEED, models=models, jobs=2,
            journal=str(journal),
        )

        rows = tolerance_rows(result)
        assert set(rows) == {"reference", "crashy", "erdos-renyi", "barabasi-albert"}
        # The dead unit's row survives as NaNs; healthy rows carry values.
        assert math.isnan(rows["crashy"][1])
        assert 0.0 <= rows["erdos-renyi"][1] <= 1.0
        assert 0.0 <= rows["barabasi-albert"][2] <= 1.0
        assert result.notes["battery_failures"] == 1
        assert "failed battery units" in result.tables

        # Series: reference + the two healthy models, two sweeps each;
        # nothing for the model that never produced a graph.
        assert len(result.series) == 6
        assert not any(label.startswith("crashy") for label in result.series)

        events = RunJournal.read(journal)
        kinds = [e["event"] for e in events]
        assert "battery_start" in kinds and "battery_end" in kinds
        assert kinds.count("unit_start") == 3
        fails = [e for e in events if e["event"] == "unit_fail"]
        assert len(fails) == 1
        assert fails[0]["model"] == "crashy"
        assert fails[0]["seed"] == crash_seed()
        assert "injected crash" in fails[0]["error"]
        finishes = {e["model"] for e in events if e["event"] == "unit_finish"}
        assert finishes == {"erdos-renyi", "barabasi-albert"}

    def test_cache_resume_recomputes_only_failed_cells(self, tmp_path):
        cache = tmp_path / "cells"
        broken = run_a3(
            n=N, steps=4, seed=SEED, cache_dir=str(cache),
            models={
                "crashy": CrashingGenerator(fail_seeds=(crash_seed(),)),
                "erdos-renyi": ErdosRenyiGnm(m=2 * N),
            },
        )
        assert broken.notes["battery_failures"] == 1
        # Both probes miss on the cold run, but only the healthy cell wrote.
        assert broken.notes["cache_misses"] == 2

        # Same identity/params (injection knobs are private), crash fixed:
        # the healthy model's cell is a hit, only crashy's recomputes.
        fixed = run_a3(
            n=N, steps=4, seed=SEED, cache_dir=str(cache),
            models={
                "crashy": CrashingGenerator(),
                "erdos-renyi": ErdosRenyiGnm(m=2 * N),
            },
        )
        assert fixed.notes["battery_failures"] == 0
        assert fixed.notes["cache_hits"] == 1
        assert fixed.notes["cache_misses"] == 1
        rows = tolerance_rows(fixed)
        assert not math.isnan(rows["crashy"][1])
        assert len(fixed.series) == 6

        # Third run: everything cached, values identical to the second.
        warm = run_a3(
            n=N, steps=4, seed=SEED, cache_dir=str(cache),
            models={
                "crashy": CrashingGenerator(),
                "erdos-renyi": ErdosRenyiGnm(m=2 * N),
            },
        )
        assert warm.notes["cache_misses"] == 0
        assert warm.notes["cache_hits"] == 2
        for name, row in tolerance_rows(warm).items():
            for a, b in zip(row[1:], rows[name][1:]):
                if isinstance(a, float) and math.isnan(a):
                    assert math.isnan(b)
                else:
                    assert a == b

    def test_default_roster_shape_unchanged(self):
        result = run_a3(n=250, steps=5, models=["erdos-renyi"])
        headers, rows = result.tables["tolerance summary"]
        assert [row[0] for row in rows] == ["reference", "erdos-renyi"]
        assert len(result.series) == 4
        assert result.notes["battery_failures"] == 0

    def test_jobs_parity(self):
        models = {"barabasi-albert": BarabasiAlbertGenerator(m=2)}
        serial = run_a3(n=N, steps=4, seed=SEED, models=dict(models))
        parallel = run_a3(n=N, steps=4, seed=SEED, models=dict(models), jobs=2)
        a = tolerance_rows(serial)["barabasi-albert"]
        b = tolerance_rows(parallel)["barabasi-albert"]
        for x, y in zip(a[1:], b[1:]):
            if isinstance(x, float) and math.isnan(x):
                assert math.isnan(y)
            else:
                assert x == y
