"""Tests for the model registry."""

import pytest

from repro.core import available_models, generator_class, make_generator, register
from repro.generators import GlpGenerator, TopologyGenerator


class TestRegistry:
    def test_fifteen_models_registered(self):
        assert len(available_models()) == 15

    def test_sorted_names(self):
        names = available_models()
        assert names == sorted(names)

    def test_lookup(self):
        assert generator_class("glp") is GlpGenerator

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="glp"):
            generator_class("no-such-model")

    def test_make_generator_passes_params(self):
        gen = make_generator("barabasi-albert", m=4)
        assert gen.m == 4

    def test_make_generator_bad_param_raises(self):
        with pytest.raises(TypeError):
            make_generator("barabasi-albert", nonsense=1)

    def test_register_rejects_unnamed(self):
        class Anon(TopologyGenerator):
            def generate(self, n, seed=None):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register(Anon)

    def test_register_rejects_duplicate_name(self):
        class Imposter(TopologyGenerator):
            name = "glp"

            def generate(self, n, seed=None):
                raise NotImplementedError

        with pytest.raises(ValueError):
            register(Imposter)

    def test_register_idempotent_for_same_class(self):
        assert register(GlpGenerator) is GlpGenerator

    def test_custom_registration(self):
        class Custom(TopologyGenerator):
            name = "custom-test-model"

            def generate(self, n, seed=None):
                from repro.graph import Graph

                g = Graph()
                g.add_nodes(range(n))
                return g

        try:
            register(Custom)
            assert "custom-test-model" in available_models()
            assert make_generator("custom-test-model").generate(5).num_nodes == 5
        finally:
            from repro.core import registry

            registry._REGISTRY.pop("custom-test-model", None)
