"""Unit tests for the JSONL run journal."""

import json

from repro.core import NullJournal, RunJournal, resolve_journal
from repro.core.journal import derive_run_id


class TestRunJournal:
    def test_emit_appends_one_json_line_per_event(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("battery_start", models=["glp"], n=100)
        journal.emit("unit_finish", model="glp", replicate=0, seconds=0.5)
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "battery_start"
        assert first["models"] == ["glp"]
        assert "ts" in first

    def test_events_accumulate_across_instances(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).emit("battery_start")
        RunJournal(path).emit("battery_end")
        assert [e["event"] for e in RunJournal.read(path)] == [
            "battery_start", "battery_end",
        ]

    def test_non_serializable_values_fall_back_to_repr(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("unit_fail", error=ValueError("boom"))  # not JSON-able
        (event,) = journal.events()
        assert "boom" in event["error"]

    def test_read_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("battery_start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "unit_fin')  # killed mid-write
        events = RunJournal.read(path)
        assert [e["event"] for e in events] == ["battery_start"]

    def test_parent_directories_created(self, tmp_path):
        journal = RunJournal(tmp_path / "deep" / "nested" / "run.jsonl")
        journal.emit("battery_start")
        assert journal.events()[0]["event"] == "battery_start"

    def test_events_on_missing_file_is_empty(self, tmp_path):
        assert RunJournal(tmp_path / "never-written.jsonl").events() == []

    def test_emit_holds_one_line_buffered_handle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        assert journal._handle is None  # opened lazily, not in __init__
        journal.emit("battery_start")
        handle = journal._handle
        assert handle is not None
        journal.emit("battery_end")
        assert journal._handle is handle  # same handle, no reopen per event
        # Line buffering flushes each event without an explicit close.
        assert len(path.read_text().splitlines()) == 2

    def test_close_releases_and_emit_reopens(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("battery_start")
        journal.close()
        assert journal._handle is None
        journal.close()  # idempotent
        journal.emit("battery_end")  # reopens transparently
        assert [e["event"] for e in journal.events()] == [
            "battery_start", "battery_end",
        ]

    def test_context_manager_closes(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal:
            journal.emit("battery_start")
            handle = journal._handle
        assert handle.closed


class TestRunIds:
    def test_derive_run_id_is_short_hex(self):
        run_id = derive_run_id({"models": ["glp"], "n": 100})
        assert len(run_id) == 12
        int(run_id, 16)  # hex digits only

    def test_identical_configs_still_get_distinct_ids(self):
        config = {"models": ["glp"], "n": 100}
        assert derive_run_id(config) != derive_run_id(config)

    def test_events_before_begin_run_are_unstamped(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("preamble")
        (event,) = journal.events()
        assert "run_id" not in event

    def test_begin_run_stamps_every_subsequent_event(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        run_id = journal.begin_run({"n": 100})
        journal.emit("battery_start")
        journal.emit("battery_end")
        assert {e["run_id"] for e in journal.events()} == {run_id}

    def test_read_runs_groups_interleaved_runs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        first = journal.begin_run({"n": 100})
        journal.emit("battery_start")
        journal.emit("battery_end")
        second = journal.begin_run({"n": 100})
        journal.emit("battery_start")
        runs = RunJournal.read_runs(path)
        assert list(runs) == [first, second]
        assert len(runs[first]) == 2
        assert len(runs[second]) == 1

    def test_null_journal_derives_an_id_but_records_nothing(self):
        journal = NullJournal()
        run_id = journal.begin_run({"n": 100})
        assert run_id and journal.run_id == run_id
        journal.emit("battery_start")
        journal.close()
        assert journal.events() == []


class TestResolveJournal:
    def test_none_resolves_to_null(self):
        journal = resolve_journal(None)
        assert isinstance(journal, NullJournal)
        journal.emit("anything", extra=1)  # no-op, no file
        assert journal.events() == []

    def test_path_resolves_to_run_journal(self, tmp_path):
        journal = resolve_journal(str(tmp_path / "run.jsonl"))
        assert isinstance(journal, RunJournal)

    def test_instance_passes_through(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert resolve_journal(journal) is journal
