"""Unit tests for the JSONL run journal."""

import json

from repro.core import NullJournal, RunJournal, resolve_journal


class TestRunJournal:
    def test_emit_appends_one_json_line_per_event(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("battery_start", models=["glp"], n=100)
        journal.emit("unit_finish", model="glp", replicate=0, seconds=0.5)
        lines = (tmp_path / "run.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "battery_start"
        assert first["models"] == ["glp"]
        assert "ts" in first

    def test_events_accumulate_across_instances(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal(path).emit("battery_start")
        RunJournal(path).emit("battery_end")
        assert [e["event"] for e in RunJournal.read(path)] == [
            "battery_start", "battery_end",
        ]

    def test_non_serializable_values_fall_back_to_repr(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("unit_fail", error=ValueError("boom"))  # not JSON-able
        (event,) = journal.events()
        assert "boom" in event["error"]

    def test_read_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("battery_start")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "unit_fin')  # killed mid-write
        events = RunJournal.read(path)
        assert [e["event"] for e in events] == ["battery_start"]

    def test_parent_directories_created(self, tmp_path):
        journal = RunJournal(tmp_path / "deep" / "nested" / "run.jsonl")
        journal.emit("battery_start")
        assert journal.events()[0]["event"] == "battery_start"

    def test_events_on_missing_file_is_empty(self, tmp_path):
        assert RunJournal(tmp_path / "never-written.jsonl").events() == []


class TestResolveJournal:
    def test_none_resolves_to_null(self):
        journal = resolve_journal(None)
        assert isinstance(journal, NullJournal)
        journal.emit("anything", extra=1)  # no-op, no file
        assert journal.events() == []

    def test_path_resolves_to_run_journal(self, tmp_path):
        journal = resolve_journal(str(tmp_path / "run.jsonl"))
        assert isinstance(journal, RunJournal)

    def test_instance_passes_through(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert resolve_journal(journal) is journal
