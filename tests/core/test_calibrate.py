"""Tests for grid calibration."""

import pytest

from repro.core import grid_calibrate, summarize
from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm


class TestGridCalibrate:
    def test_recovers_edge_density(self):
        # Target: an ER graph with 400 edges; the grid should prefer m=400.
        target = summarize(ErdosRenyiGnm(m=400).generate(200, seed=1), min_tail=50)
        result = grid_calibrate(
            lambda m: ErdosRenyiGnm(m=m),
            {"m": [100, 400, 1200]},
            target,
            n=200,
            seeds=2,
        )
        assert result.best_params == {"m": 400}

    def test_trials_cover_grid(self):
        target = summarize(BarabasiAlbertGenerator(m=2).generate(150, seed=2))
        result = grid_calibrate(
            lambda m: BarabasiAlbertGenerator(m=m),
            {"m": [1, 2, 3]},
            target,
            n=150,
            seeds=1,
        )
        assert len(result.trials) == 3
        assert result.best_score <= min(score for _, score in result.trials) + 1e-12

    def test_top_ranked(self):
        target = summarize(BarabasiAlbertGenerator(m=2).generate(150, seed=3))
        result = grid_calibrate(
            lambda m: BarabasiAlbertGenerator(m=m),
            {"m": [1, 2, 4]},
            target,
            n=150,
            seeds=1,
        )
        top = result.top(2)
        assert len(top) == 2
        assert top[0][1] <= top[1][1]

    def test_invalid_points_skipped(self):
        target = summarize(BarabasiAlbertGenerator(m=2).generate(150, seed=4))
        result = grid_calibrate(
            lambda m: BarabasiAlbertGenerator(m=m),
            {"m": [0, 2]},  # m=0 raises ValueError inside the factory
            target,
            n=150,
            seeds=1,
        )
        assert len(result.trials) == 1

    def test_all_failing_grid_raises(self):
        target = summarize(BarabasiAlbertGenerator(m=2).generate(150, seed=5))
        with pytest.raises(ValueError):
            grid_calibrate(
                lambda m: BarabasiAlbertGenerator(m=m),
                {"m": [0, -1]},
                target,
                n=150,
            )

    def test_empty_grid_rejected(self):
        target = summarize(BarabasiAlbertGenerator(m=2).generate(150, seed=6))
        with pytest.raises(ValueError):
            grid_calibrate(lambda: None, {}, target, n=150)
