"""Tests for experiment helpers."""

import pytest

from repro.core import Replicates, replicate, seed_sequence, sweep_sizes
from repro.generators import BarabasiAlbertGenerator


class TestSeedSequence:
    def test_deterministic(self):
        assert seed_sequence(5, 10) == seed_sequence(5, 10)

    def test_distinct(self):
        seeds = seed_sequence(1, 100)
        assert len(set(seeds)) == 100

    def test_positive(self):
        assert all(s > 0 for s in seed_sequence(0, 50))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            seed_sequence(1, 0)

    def test_different_bases_differ(self):
        assert seed_sequence(1, 5) != seed_sequence(2, 5)


class TestReplicates:
    def test_mean_std(self):
        r = Replicates(values=(1.0, 2.0, 3.0))
        assert r.mean == 2.0
        assert r.std == pytest.approx(1.0)
        assert r.stderr == pytest.approx(1.0 / 3**0.5)

    def test_single_value_zero_std(self):
        r = Replicates(values=(5.0,))
        assert r.std == 0.0

    def test_str(self):
        assert "n=2" in str(Replicates(values=(1.0, 2.0)))


class TestReplicate:
    def test_runs_requested_seeds(self):
        gen = BarabasiAlbertGenerator(m=1)
        r = replicate(gen, 100, lambda g: g.num_edges, seeds=4, base_seed=3)
        assert len(r.values) == 4

    def test_metric_applied(self):
        gen = BarabasiAlbertGenerator(m=1)
        r = replicate(gen, 100, lambda g: g.num_nodes, seeds=2)
        assert r.mean == 100.0
        assert r.std == 0.0

    def test_reproducible(self):
        gen = BarabasiAlbertGenerator(m=2)
        a = replicate(gen, 120, lambda g: g.max_degree, seeds=3, base_seed=7)
        b = replicate(gen, 120, lambda g: g.max_degree, seeds=3, base_seed=7)
        assert a.values == b.values


class TestSweep:
    def test_sizes_in_order(self):
        gen = BarabasiAlbertGenerator(m=1)
        rows = sweep_sizes(gen, [50, 100, 150], lambda g: g.num_nodes, seeds=1)
        assert [n for n, _ in rows] == [50, 100, 150]
        assert [r.mean for _, r in rows] == [50.0, 100.0, 150.0]

    def test_feeds_scaling_fit(self):
        from repro.graph import total_triangles
        from repro.stats import fit_power_scaling

        gen = BarabasiAlbertGenerator(m=2)
        rows = sweep_sizes(gen, [200, 400, 800], total_triangles, seeds=2)
        fit = fit_power_scaling([n for n, _ in rows], [r.mean for _, r in rows])
        assert fit.exponent > 0  # triangles grow with size
