"""Transport equivalence: shared transport must be invisible in results.

The contract mirrors the parallel runner's: ``transport="shared"`` (publish
each topology once, measure groups attach) must produce bit-identical
``BatteryResult`` values to ``transport="regenerate"`` (each unit rebuilds
its own graph), write byte-identical cache cells under the same keys, and
— the whole point — generate each (model, seed) topology exactly once,
which the run journal proves.
"""

import json

from repro.core import METRIC_GROUPS, make_generator, run_battery
from repro.core.cache import ResultCache

from ..generators.test_common import MODEL_PARAMS
from .test_parallel_battery import FAST, N, _assert_identical, _metric_dicts

SEEDS = 1
BASE_SEED = 29


def _registry_roster():
    """Every registered model, with the params that keep n=150 valid."""
    return {
        name: make_generator(name, **MODEL_PARAMS[name])
        for name in sorted(MODEL_PARAMS)
    }


def _events(journal_path, event=None, **match):
    out = []
    for line in journal_path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if event is not None and record.get("event") != event:
            continue
        if all(record.get(k) == v for k, v in match.items()):
            out.append(record)
    return out


class TestRegistryEquivalence:
    def test_shared_bit_identical_across_registry(self):
        roster = _registry_roster()
        oracle = run_battery(
            roster, n=N, seeds=SEEDS, base_seed=BASE_SEED,
            transport="regenerate", **FAST,
        )
        shared = run_battery(
            roster, n=N, seeds=SEEDS, base_seed=BASE_SEED, jobs=2,
            transport="shared", **FAST,
        )
        assert oracle.transport == "regenerate"
        assert shared.transport == "shared"
        assert not oracle.failures and not shared.failures
        _assert_identical(_metric_dicts(oracle), _metric_dicts(shared))


class TestCacheCellEquivalence:
    MODELS = ["barabasi-albert", "glp", "erdos-renyi-gnm"]

    @staticmethod
    def _cells(root):
        """relative path → bytes for every metric cell (snapshots excluded)."""
        return {
            str(p.relative_to(root)): p.read_bytes()
            for p in root.rglob("*.json")
            if "snapshots" not in p.relative_to(root).parts
        }

    def test_cells_byte_identical_across_transports(self, tmp_path):
        run_battery(
            self.MODELS, n=N, seeds=SEEDS, base_seed=BASE_SEED,
            cache=tmp_path / "regen", transport="regenerate", **FAST,
        )
        run_battery(
            self.MODELS, n=N, seeds=SEEDS, base_seed=BASE_SEED,
            cache=tmp_path / "shared", transport="shared", **FAST,
        )
        regen = self._cells(tmp_path / "regen")
        shared = self._cells(tmp_path / "shared")
        assert regen and regen == shared

    def test_shared_run_fully_warm_on_regenerate_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_battery(
            self.MODELS, n=N, seeds=SEEDS, base_seed=BASE_SEED,
            cache=cache, transport="regenerate", **FAST,
        )
        warm = run_battery(
            self.MODELS, n=N, seeds=SEEDS, base_seed=BASE_SEED,
            cache=cache, transport="shared", **FAST,
        )
        cells = len(self.MODELS) * SEEDS * len(METRIC_GROUPS)
        assert warm.stats.hits == cells
        assert warm.stats.misses == 0
        _assert_identical(_metric_dicts(cold), _metric_dicts(warm))


class TestGenerationCounts:
    MODELS = ["barabasi-albert", "glp"]

    def test_one_generation_per_model_seed(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_battery(
            self.MODELS, n=N, seeds=2, base_seed=BASE_SEED, jobs=2,
            cache=tmp_path / "cache", journal=journal,
            transport="shared", **FAST,
        )
        starts = _events(journal, "unit_start", kind="generate")
        pairs = [(rec["model"], rec["seed"]) for rec in starts]
        assert sorted(set(pairs)) == sorted(pairs)  # no repeats
        assert len(pairs) == len(self.MODELS) * 2
        # Every metric group measured against an attached snapshot.
        measures = _events(journal, "unit_start", kind="measure")
        assert len(measures) == len(self.MODELS) * 2 * len(METRIC_GROUPS)

    def test_spool_hit_skips_regeneration(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        cache = tmp_path / "cache"
        run_battery(
            self.MODELS, n=N, seeds=1, base_seed=BASE_SEED,
            cache=cache, journal=journal, transport="shared", **FAST,
        )
        # Evict metric cells but keep snapshots: forces re-measurement
        # against the persisted spool, with zero regeneration.
        for cell in (tmp_path / "cache").rglob("*.json"):
            if "snapshots" not in cell.relative_to(cache).parts:
                cell.unlink()
        rerun = run_battery(
            self.MODELS, n=N, seeds=1, base_seed=BASE_SEED,
            cache=cache, journal=journal, transport="shared", **FAST,
        )
        assert not rerun.failures
        lines = journal.read_text(encoding="utf-8").splitlines()
        run_ids = [json.loads(line)["run_id"] for line in lines]
        last_run = [
            json.loads(line) for line in lines
            if json.loads(line)["run_id"] == run_ids[-1]
        ]
        gen_starts = [
            r for r in last_run
            if r["event"] == "unit_start" and r.get("kind") == "generate"
        ]
        hits = [r for r in last_run if r["event"] == "snapshot_hit"]
        assert gen_starts == []
        assert len(hits) == len(self.MODELS)
        gen_records = [
            rec for rec in rerun.records
            if rec.group == "generate" and rec.cached
        ]
        assert len(gen_records) == len(self.MODELS)
