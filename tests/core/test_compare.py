"""Tests for model-vs-target comparison."""

import math

import pytest

from repro.core import (
    DEFAULT_SCORED_METRICS,
    compare_graphs,
    compare_summaries,
    summarize,
)


class TestCompareSummaries:
    def test_self_comparison_zero(self, medium_random):
        s = summarize(medium_random)
        result = compare_summaries(s, s)
        assert result.score == pytest.approx(0.0)
        assert all(row.penalty == 0.0 for row in result.rows)

    def test_ratio_symmetry(self, medium_random, triangle):
        a = summarize(medium_random)
        b = summarize(triangle, min_tail=2)
        forward = compare_summaries(a, b)
        backward = compare_summaries(b, a)
        assert forward.score == pytest.approx(backward.score)

    def test_both_nan_exponents_agree(self, k4, square):
        a = summarize(k4, min_tail=2)
        b = summarize(square, min_tail=2)
        result = compare_summaries(a, b)
        assert result.row("degree_exponent").penalty == 0.0

    def test_one_nan_max_penalty(self, k4):
        from repro.generators import BarabasiAlbertGenerator

        heavy = summarize(BarabasiAlbertGenerator(m=2).generate(1500, seed=1))
        flat = summarize(k4, min_tail=2)
        result = compare_summaries(heavy, flat)
        assert result.row("degree_exponent").penalty == 3.0

    def test_custom_metric_set(self, medium_random, triangle):
        a = summarize(medium_random)
        b = summarize(triangle, min_tail=2)
        result = compare_summaries(a, b, metrics={"average_degree": ("ratio", 1.0)})
        assert len(result.rows) == 1

    def test_unknown_metric_rejected(self, triangle):
        s = summarize(triangle, min_tail=2)
        with pytest.raises(KeyError):
            compare_summaries(s, s, metrics={"nonexistent": ("ratio", 1.0)})

    def test_row_lookup(self, triangle):
        s = summarize(triangle, min_tail=2)
        result = compare_summaries(s, s)
        assert result.row("average_degree").model_value == pytest.approx(2.0)
        with pytest.raises(KeyError):
            result.row("missing")

    def test_penalty_is_log_ratio(self, medium_random):
        s = summarize(medium_random)
        doubled = summarize(medium_random)
        # Fake a doubled average degree through a custom metric dict trick:
        from dataclasses import replace

        doubled = replace(doubled, average_degree=s.average_degree * 2)
        result = compare_summaries(
            doubled, s, metrics={"average_degree": ("ratio", 1.0)}
        )
        assert result.score == pytest.approx(math.log(2.0))

    def test_diff_mode_scaled(self, medium_random):
        from dataclasses import replace

        s = summarize(medium_random)
        shifted = replace(s, assortativity=s.assortativity + 0.2)
        result = compare_summaries(
            shifted, s, metrics={"assortativity": ("diff", 0.2)}
        )
        assert result.score == pytest.approx(1.0)

    def test_str_output(self, triangle):
        s = summarize(triangle, min_tail=2)
        text = str(compare_summaries(s, s))
        assert "score=" in text


class TestCompareGraphs:
    def test_end_to_end(self, medium_random):
        result = compare_graphs(medium_random, medium_random)
        assert result.score == pytest.approx(0.0)

    def test_ranks_similar_model_better(self):
        # Two BA graphs should be closer to each other than BA vs ER.
        from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGnm

        ba1 = BarabasiAlbertGenerator(m=2).generate(800, seed=1)
        ba2 = BarabasiAlbertGenerator(m=2).generate(800, seed=2)
        er = ErdosRenyiGnm(m=ba1.num_edges).generate(800, seed=3)
        assert compare_graphs(ba2, ba1).score < compare_graphs(er, ba1).score

    def test_default_metrics_complete(self):
        for metric, (mode, scale) in DEFAULT_SCORED_METRICS.items():
            assert mode in ("ratio", "diff")
            assert scale > 0
