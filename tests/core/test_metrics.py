"""Tests for the metric battery."""

import math

import pytest

from repro.core import TopologySummary, summarize
from repro.graph import Graph


class TestSummarize:
    def test_triangle_values(self, triangle):
        s = summarize(triangle)
        assert s.num_nodes == 3
        assert s.num_edges == 3
        assert s.average_degree == pytest.approx(2.0)
        assert s.max_degree == 2
        assert s.average_clustering == 1.0
        assert s.transitivity == 1.0
        assert s.triangles == 1
        assert s.average_path_length == 1.0
        assert s.degeneracy == 2
        assert s.giant_fraction == 1.0

    def test_giant_component_only(self, two_triangles):
        s = summarize(two_triangles)
        assert s.num_nodes == 3
        assert s.giant_fraction == 0.5

    def test_no_tail_gives_nan(self, k4):
        s = summarize(k4, min_tail=2)
        assert math.isnan(s.degree_exponent)

    def test_heavy_tail_fitted(self):
        from repro.generators import BarabasiAlbertGenerator

        g = BarabasiAlbertGenerator(m=2).generate(2000, seed=1)
        s = summarize(g)
        assert s.degree_exponent == pytest.approx(3.0, abs=0.6)
        assert s.degree_exponent_sigma > 0

    def test_sampled_paths_reproducible(self):
        from repro.generators import GlpGenerator

        g = GlpGenerator().generate(2000, seed=2)
        a = summarize(g, path_sample_threshold=100, path_samples=50, seed=5)
        b = summarize(g, path_sample_threshold=100, path_samples=50, seed=5)
        assert a.average_path_length == b.average_path_length

    def test_name_defaults_to_graph_name(self):
        g = Graph(name="custom")
        g.add_edge(0, 1)
        assert summarize(g).name == "custom"

    def test_name_override(self, triangle):
        assert summarize(triangle, name="override").name == "override"

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            summarize(Graph())

    def test_as_dict_excludes_name(self, triangle):
        d = summarize(triangle).as_dict()
        assert "name" not in d
        assert d["num_nodes"] == 3

    def test_str_contains_key_stats(self, triangle):
        text = str(summarize(triangle))
        assert "N=3" in text
        assert "gamma=n/a" in text or "gamma=" in text

    def test_max_degree_fraction(self, star):
        s = summarize(star)
        assert s.max_degree_fraction == pytest.approx(5 / 6)
