"""Tests for report rendering."""

import math

from repro.core import format_series, format_table, format_value


class TestFormatValue:
    def test_nan(self):
        assert format_value(float("nan")) == "n/a"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("glp") == "glp"

    def test_float_compact(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_large_float(self):
        assert "e" in format_value(1.23e9) or "1230000000" not in format_value(1.23e9)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["model", "gamma"], [["ba", 3.0], ["glp", 2.2]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("model")
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        text = format_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["very-long-cell-value"]])
        rule = text.splitlines()[1]
        assert len(rule) >= len("very-long-cell-value")

    def test_nan_rendered(self):
        text = format_table(["gamma"], [[float("nan")]])
        assert "n/a" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatSeries:
    def test_labels(self):
        text = format_series([(1, 0.5), (2, 0.25)], x_label="k", y_label="P")
        assert text.splitlines()[0].startswith("k")
        assert "0.5" in text

    def test_title(self):
        text = format_series([(1, 1.0)], title="F2")
        assert text.startswith("F2")
