"""Tests for report rendering."""

import math

from repro.core import format_series, format_table, format_value
from repro.core.battery import BatteryResult, UnitRecord
from repro.core.cache import CacheStats


class TestFormatValue:
    def test_nan(self):
        assert format_value(float("nan")) == "n/a"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("glp") == "glp"

    def test_float_compact(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_large_float(self):
        assert "e" in format_value(1.23e9) or "1230000000" not in format_value(1.23e9)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["model", "gamma"], [["ba", 3.0], ["glp", 2.2]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("model")
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        text = format_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["very-long-cell-value"]])
        rule = text.splitlines()[1]
        assert len(rule) >= len("very-long-cell-value")

    def test_nan_rendered(self):
        text = format_table(["gamma"], [[float("nan")]])
        assert "n/a" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


def _battery_result(records):
    return BatteryResult(
        entries=[], records=records, stats=CacheStats(), jobs=1, elapsed=1.0
    )


class TestRenderTiming:
    """The battery telemetry block: per-group timing rows and, when any
    unit died, the failed-units table."""

    OK_RECORDS = [
        UnitRecord("glp", 0, "generate", seed=1, cached=False, seconds=0.5),
        UnitRecord("glp", 0, "tail", seed=1, cached=False, seconds=1.25),
        UnitRecord("glp", 1, "tail", seed=2, cached=True, seconds=0.0),
    ]

    def test_per_group_rows_aggregate_computed_and_cached(self):
        result = _battery_result(list(self.OK_RECORDS))
        headers, rows = result.timing_table()
        assert headers == ["model", "group", "computed", "cached", "seconds"]
        assert rows == [
            ["glp", "generate", 1, 0, 0.5],
            ["glp", "tail", 1, 1, 1.25],  # cached cell adds no seconds
        ]

    def test_render_timing_clean_run_has_no_failure_table(self):
        text = _battery_result(list(self.OK_RECORDS)).render_timing()
        assert "battery telemetry" in text
        assert "glp" in text and "tail" in text
        assert "jobs=1" in text
        assert "failed units" not in text

    def test_failed_units_excluded_from_timing_rows(self):
        records = list(self.OK_RECORDS) + [
            UnitRecord("pfp", 0, "unit", seed=3, cached=False, seconds=2.0,
                       status="failed", error="ValueError: boom"),
        ]
        _, rows = _battery_result(records).timing_table()
        assert all(row[0] != "pfp" for row in rows)

    def test_failure_table_rows_carry_identity_and_last_error_line(self):
        records = list(self.OK_RECORDS) + [
            UnitRecord(
                "pfp", 2, "unit", seed=7, cached=False, seconds=2.0,
                status="timeout",
                error="Traceback (most recent call last):\n"
                      "  ...\nTimeoutError: unit exceeded 30s",
            ),
        ]
        result = _battery_result(records)
        headers, rows = result.failure_table()
        assert headers == ["model", "replicate", "seed", "status", "error"]
        ((model, replicate, seed, status, message),) = rows
        assert (model, replicate, seed, status) == ("pfp", 2, 7, "timeout")
        assert "TimeoutError" in message
        assert "Traceback" not in message  # only the last line survives

    def test_render_timing_appends_failure_table_when_units_failed(self):
        records = list(self.OK_RECORDS) + [
            UnitRecord("pfp", 0, "unit", seed=3, cached=False, seconds=2.0,
                       status="failed", error="ValueError: boom"),
        ]
        text = _battery_result(records).render_timing()
        assert "failed units" in text
        assert "boom" in text
        # The telemetry table still renders above the failure table.
        assert text.index("battery telemetry") < text.index("failed units")


class TestFormatSeries:
    def test_labels(self):
        text = format_series([(1, 0.5), (2, 0.25)], x_label="k", y_label="P")
        assert text.splitlines()[0].startswith("k")
        assert "0.5" in text

    def test_title(self):
        text = format_series([(1, 1.0)], title="F2")
        assert text.startswith("F2")
