"""Seed-determinism regression sweep over every registered generator.

Guards the battery's seed-derivation path: the parallel runner is only
bit-reproducible if every generator is a pure function of (params, n,
seed).  Each registered model must give the identical edge list for the
same seed — including from a freshly constructed instance, so no state may
leak between generate() calls — and a different graph for a different seed.
"""

import pytest

from repro.core import available_models, make_generator
from repro.generators.dk import Dk2Generator
from repro.generators.random_reference import RandomReferenceGenerator
from repro.graph.graph import Graph
from repro.stats.rng import derive_seed

N = 500
SEED = 11


def _edge_set(graph):
    return sorted(tuple(sorted(edge)) for edge in graph.edges())


@pytest.mark.parametrize("name", available_models())
class TestRegistrySweep:
    def test_same_seed_identical_edge_list(self, name):
        first = make_generator(name).generate(N, seed=SEED)
        second = make_generator(name).generate(N, seed=SEED)
        assert _edge_set(first) == _edge_set(second)

    def test_repeated_calls_on_one_instance_identical(self, name):
        generator = make_generator(name)
        first = generator.generate(N, seed=SEED)
        second = generator.generate(N, seed=SEED)
        assert _edge_set(first) == _edge_set(second)

    def test_different_seed_different_graph(self, name):
        generator = make_generator(name)
        first = generator.generate(N, seed=SEED)
        second = generator.generate(N, seed=SEED + 1)
        assert _edge_set(first) != _edge_set(second)


class TestDeriveSeed:
    def test_pure_function(self):
        assert derive_seed("glp", {"m": 1.13}, 0) == derive_seed("glp", {"m": 1.13}, 0)

    def test_component_sensitivity(self):
        base = derive_seed("glp", {"m": 1.13}, 2000, 21, 0)
        assert base != derive_seed("pfp", {"m": 1.13}, 2000, 21, 0)
        assert base != derive_seed("glp", {"m": 1.14}, 2000, 21, 0)
        assert base != derive_seed("glp", {"m": 1.13}, 2001, 21, 0)
        assert base != derive_seed("glp", {"m": 1.13}, 2000, 22, 0)
        assert base != derive_seed("glp", {"m": 1.13}, 2000, 21, 1)

    def test_dict_order_irrelevant(self):
        assert derive_seed({"a": 1, "b": 2}) == derive_seed({"b": 2, "a": 1})

    def test_positive_63_bit_range(self):
        for value in (derive_seed(i) for i in range(100)):
            assert 1 <= value < (1 << 62) + 1

    def test_frozen_golden_value(self):
        # Cross-process/cross-version stability contract: if this changes,
        # every on-disk cache key and battery seed changes with it.  Bump
        # METRICS_VERSION if you ever intentionally alter the derivation.
        assert derive_seed("battery-unit", "glp", {}, 100, 1, 0) == 992310465330563871


def _path_graph(order):
    graph = Graph()
    for u, v in zip(order, order[1:]):
        graph.add_edge(u, v)
    return graph


class TestTemplateIdentity:
    """Template-based generators must be distinguishable by params() —
    otherwise the battery cache would serve one template's cached cells
    for another."""

    def test_fingerprint_insertion_order_independent(self):
        assert _path_graph([1, 2, 3, 4]).fingerprint() == \
            _path_graph([4, 3, 2, 1]).fingerprint()

    def test_fingerprint_content_sensitive(self):
        assert _path_graph([1, 2, 3, 4]).fingerprint() != \
            _path_graph([1, 2, 3, 5]).fingerprint()

    @pytest.mark.parametrize("cls", [Dk2Generator, RandomReferenceGenerator])
    def test_different_templates_different_params(self, cls):
        a = cls(_path_graph([1, 2, 3, 4]))
        b = cls(_path_graph([1, 2, 3, 5]))
        assert a.params() != b.params()
        assert "template_fingerprint" in a.params()
