"""Determinism/oracle harness for the parallel battery runner.

The runner's headline guarantee: results are bit-identical at any ``jobs``
value and on warm vs. cold cache.  These tests enforce it directly — the
serial run is the oracle, every other configuration must match it exactly
(no tolerances anywhere).
"""

import math
import os

import pytest

from repro.core import (
    METRIC_GROUPS,
    PartialSummary,
    ResultCache,
    compare_models,
    compare_summaries,
    run_battery,
)

#: Worker count for the parallel side of each identity check; the CI matrix
#: exercises 1 and 2 explicitly via this variable.
PARALLEL_JOBS = int(os.environ.get("REPRO_TEST_JOBS", "4"))

MODELS = ["barabasi-albert", "glp", "erdos-renyi-gnm"]
N = 150
SEEDS = 2
FAST = {"min_tail": 20, "path_samples": 50, "path_sample_threshold": 100}


def _metric_dicts(result):
    """model → per-replicate metric dicts, for exact comparison."""
    return {
        entry.model: [summary.as_dict() for summary in entry.summaries]
        for entry in result.entries
    }


def _assert_identical(a, b):
    assert set(a) == set(b)
    for model in a:
        assert len(a[model]) == len(b[model])
        for left, right in zip(a[model], b[model]):
            assert set(left) == set(right)
            for metric in left:
                lv, rv = left[metric], right[metric]
                if isinstance(lv, float) and math.isnan(lv):
                    assert math.isnan(rv), metric
                else:
                    assert lv == rv, metric  # bit-identical, no tolerance


class TestJobsInvariance:
    def test_serial_and_parallel_identical(self):
        serial = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, **FAST)
        parallel = run_battery(MODELS, n=N, seeds=SEEDS, jobs=PARALLEL_JOBS, **FAST)
        _assert_identical(_metric_dicts(serial), _metric_dicts(parallel))

    def test_unit_seeds_do_not_depend_on_jobs(self):
        serial = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, **FAST)
        parallel = run_battery(MODELS, n=N, seeds=SEEDS, jobs=PARALLEL_JOBS, **FAST)
        assert [e.seeds for e in serial.entries] == [e.seeds for e in parallel.entries]

    def test_compare_models_scores_identical(self):
        a = compare_models(MODELS, n=N, seeds=SEEDS, jobs=1, **FAST)
        b = compare_models(MODELS, n=N, seeds=SEEDS, jobs=PARALLEL_JOBS, **FAST)
        assert [s.scores for s in a.scores] == [s.scores for s in b.scores]
        assert a.ranking() == b.ranking()


class TestWarmCache:
    def test_warm_rerun_identical_with_zero_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, cache=cache, **FAST)
        cells = len(MODELS) * SEEDS * len(METRIC_GROUPS)
        assert cold.stats.misses == cells
        assert cold.stats.writes == cells
        assert cold.stats.hits == 0

        warm_cache = ResultCache(tmp_path)
        warm = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, cache=warm_cache, **FAST)
        assert warm_cache.stats.hits == cells
        assert warm_cache.stats.misses == 0  # zero recomputation
        assert warm_cache.stats.writes == 0
        assert all(rec.cached for rec in warm.records)
        _assert_identical(_metric_dicts(cold), _metric_dicts(warm))

    def test_warm_cache_identical_under_parallel_run(self, tmp_path):
        cold = run_battery(
            MODELS, n=N, seeds=SEEDS, jobs=PARALLEL_JOBS, cache=str(tmp_path), **FAST
        )
        warm = run_battery(
            MODELS, n=N, seeds=SEEDS, jobs=PARALLEL_JOBS, cache=str(tmp_path), **FAST
        )
        assert warm.stats.misses == 0
        _assert_identical(_metric_dicts(cold), _metric_dicts(warm))

    def test_cache_shared_across_jobs_values(self, tmp_path):
        run_battery(MODELS, n=N, seeds=SEEDS, jobs=PARALLEL_JOBS, cache=str(tmp_path), **FAST)
        warm = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, cache=str(tmp_path), **FAST)
        assert warm.stats.misses == 0

    def test_adding_replicates_reuses_existing_cells(self, tmp_path):
        run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, cache=str(tmp_path), **FAST)
        grown = run_battery(MODELS, n=N, seeds=SEEDS + 1, jobs=1, cache=str(tmp_path), **FAST)
        # The first SEEDS replicates come straight from the cache...
        assert grown.stats.hits == len(MODELS) * SEEDS * len(METRIC_GROUPS)
        # ...and only the new replicate's cells are computed.
        assert grown.stats.misses == len(MODELS) * len(METRIC_GROUPS)

    def test_shared_cache_instance_reports_per_run_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = len(MODELS) * SEEDS * len(METRIC_GROUPS)
        cold = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, cache=cache, **FAST)
        warm = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, cache=cache, **FAST)
        # One cache OBJECT reused across runs: each run reports its own
        # delta, not the accumulated lifetime counters.
        assert cold.stats.misses == cells
        assert cold.stats.hits == 0
        assert warm.stats.hits == cells
        assert warm.stats.misses == 0
        assert warm.stats.writes == 0
        # The instance itself still accumulates across its lifetime.
        assert cache.stats.hits == cells
        assert cache.stats.misses == cells

    def test_shared_cache_instance_across_compare_models(self, tmp_path):
        cache = ResultCache(tmp_path)
        compare_models(MODELS, n=N, seeds=SEEDS, jobs=1, cache=cache, **FAST)
        second = compare_models(MODELS, n=N, seeds=SEEDS, jobs=1, cache=cache, **FAST)
        cells = (len(MODELS) * SEEDS + 1) * len(METRIC_GROUPS)  # +1: target
        assert second.battery.stats.hits == cells
        assert second.battery.stats.misses == 0

    def test_compare_models_warm_includes_target(self, tmp_path):
        compare_models(MODELS, n=N, seeds=SEEDS, jobs=1, cache=str(tmp_path), **FAST)
        warm = compare_models(MODELS, n=N, seeds=SEEDS, jobs=1, cache=str(tmp_path), **FAST)
        # Model cells AND the reference-map summary all come from the cache.
        assert warm.battery.stats.misses == 0


class TestBatteryShape:
    def test_partial_groups_yield_partial_summary(self):
        result = run_battery(
            ["barabasi-albert"], n=N, seeds=1, groups=["size", "clustering"], **FAST
        )
        (summary,) = result.entries[0].summaries
        # Partial batteries get an explicit PartialSummary, never None.
        assert isinstance(summary, PartialSummary)
        assert not summary.failed
        assert summary.groups == ("size", "clustering")
        assert set(summary.missing) == set(METRIC_GROUPS) - {"size", "clustering"}
        assert summary.values["num_nodes"] > 0
        by_group = {rec.group for rec in result.records}
        assert by_group == {"size", "clustering", "generate", "giant"}

    def test_partial_summary_scoring_raises_naming_missing_groups(self):
        full = run_battery(["barabasi-albert"], n=N, seeds=1, **FAST)
        partial = run_battery(
            ["barabasi-albert"], n=N, seeds=1, groups=["tail"], **FAST
        )
        (target,) = full.entries[0].summaries
        (summary,) = partial.entries[0].summaries
        with pytest.raises(ValueError, match="clustering"):
            compare_summaries(summary, target)
        with pytest.raises(ValueError, match="paths"):
            compare_summaries(target, summary)

    def test_unknown_group_rejected_upfront(self):
        with pytest.raises(KeyError, match="bogus"):
            run_battery(["barabasi-albert"], n=N, seeds=1, groups=["bogus"], **FAST)

    def test_records_cover_every_cell(self):
        result = run_battery(MODELS, n=N, seeds=SEEDS, jobs=1, **FAST)
        shared_passes = ("generate", "giant")
        metric_records = [r for r in result.records if r.group not in shared_passes]
        assert len(metric_records) == len(MODELS) * SEEDS * len(METRIC_GROUPS)
        assert result.stats.misses == len(metric_records)  # NullCache: all miss
        assert result.failures == []

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_battery(["glp", "glp"], n=N, seeds=1, **FAST)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_battery(MODELS, n=N, seeds=1, jobs=0, **FAST)
