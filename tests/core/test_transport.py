"""Zero-copy graph transport: handles, spools, contexts, containment.

The transport's contract is that sharing is invisible: an attached graph
is indistinguishable (fingerprint, node order, weights) from the one
published, the spool never repeats a generation it already holds, crashes
mid-publish never leak staging directories past a pool rebuild, and the
battery behaves identically under fork and spawn start methods.  The
property-based round trip drives the handle over the historically nasty
graph shapes: isolated nodes, mixed int/str ids, accumulated weights.
"""

import itertools
import json
import multiprocessing
import os
import string

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import run_battery
from repro.core.metrics import TopologySummary
from repro.core.transport import (
    AUTO_SHARED_GROUPS,
    AUTO_SHARED_NODES,
    REPRO_MP_START_ENV,
    REPRO_TRANSPORT_DIR_ENV,
    REPRO_TRANSPORT_ENV,
    SnapshotSpool,
    attach_graph,
    attach_view,
    clear_attach_cache,
    publish_graph,
    resolve_mp_context,
    resolve_transport,
    set_attach_cache_limit,
    unlink_shared,
)
from repro.generators.barabasi_albert import BarabasiAlbertGenerator
from repro.generators.base import TopologyGenerator
from repro.graph import Graph

FAST = {"min_tail": 20, "path_samples": 50, "path_sample_threshold": 100}

node_ids = st.one_of(
    st.integers(min_value=0, max_value=40),
    st.text(alphabet=string.ascii_letters, min_size=1, max_size=6),
)
weights = st.integers(min_value=1, max_value=16).map(lambda q: q / 4.0)


@st.composite
def graphs(draw):
    """Graphs with isolated nodes, mixed id types, accumulated weights."""
    nodes = draw(st.lists(node_ids, min_size=1, max_size=25, unique=True))
    g = Graph(name="prop")
    g.add_nodes(nodes)
    if len(nodes) >= 2:
        edges = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(nodes), st.sampled_from(nodes), weights
                ),
                max_size=40,
            )
        )
        g.add_edges((u, v, w) for u, v, w in edges if u != v)
    return g


_shm_tokens = itertools.count()


class TestHandleRoundTrip:
    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_spool_round_trip(self, tmp_path_factory, g):
        path = tmp_path_factory.mktemp("pub") / "graph"
        handle = publish_graph(g, path)
        try:
            clear_attach_cache()
            attached = attach_graph(handle)
            assert attached.fingerprint() == g.fingerprint()
            assert list(attached.nodes()) == list(g.nodes())
            assert attached.num_edges == g.num_edges
            norm = lambda graph: {
                frozenset((u, v)): w for u, v, w in graph.weighted_edges()
            }
            assert norm(attached) == norm(g)
        finally:
            clear_attach_cache()
            unlink_shared(handle)

    @given(graphs())
    @settings(max_examples=15, deadline=None)
    def test_shm_round_trip(self, g):
        token = f"repro-test-{os.getpid():x}-{next(_shm_tokens):x}"
        handle = publish_graph(g, token, method="shm")
        try:
            clear_attach_cache()
            attached = attach_graph(handle)
            assert attached.fingerprint() == g.fingerprint()
            assert list(attached.nodes()) == list(g.nodes())
        finally:
            clear_attach_cache()
            unlink_shared(handle)

    def test_handle_reports_identity_without_arrays(self, tmp_path):
        g = BarabasiAlbertGenerator(m=2).generate(80, seed=5)
        handle = publish_graph(g, tmp_path / "graph")
        assert handle.method == "spool"
        assert handle.fingerprint == g.fingerprint()
        assert handle.num_nodes == 80
        assert handle.num_edges == g.num_edges
        assert handle.nbytes > 0

    def test_attach_is_cached_per_process(self, tmp_path):
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=1)
        handle = publish_graph(g, tmp_path / "graph")
        clear_attach_cache()
        first = attach_graph(handle)
        assert attach_graph(handle) is first
        assert attach_view(handle) is first.csr()
        clear_attach_cache()
        assert attach_graph(handle) is not first

    def test_attached_view_is_shared_not_rebuilt(self, tmp_path):
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=2)
        handle = publish_graph(g, tmp_path / "graph")
        clear_attach_cache()
        attached = attach_graph(handle)
        # The graph's CSR view must *be* the mmap-backed shared view, and
        # its fingerprint must come pre-seeded (no recompute).
        assert attached.csr() is attach_view(handle)
        assert attached.fingerprint() == handle.fingerprint

    def test_handles_pickle(self, tmp_path):
        import pickle

        g = BarabasiAlbertGenerator(m=2).generate(50, seed=3)
        handle = publish_graph(g, tmp_path / "graph")
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        assert attach_graph(clone).fingerprint() == g.fingerprint()


class TestAttachCacheLRU:
    """The per-process attach cache is a bounded LRU (satellite of PR 10):
    a worker cycling through many distinct publications must hold a fixed
    number of attachments, and eviction must never invalidate a view a
    caller is still reading."""

    @pytest.fixture(autouse=True)
    def _bounded_cache(self):
        clear_attach_cache()
        previous = set_attach_cache_limit(2)
        yield
        set_attach_cache_limit(previous)
        clear_attach_cache()

    def _publish_many(self, tmp_path, count):
        handles = []
        for i in range(count):
            g = BarabasiAlbertGenerator(m=2).generate(40 + i, seed=i)
            handles.append(publish_graph(g, tmp_path / f"graph-{i}"))
        return handles

    def test_bound_evicts_under_many_fingerprints(self, tmp_path):
        from repro.core.transport import _attach_cache
        from repro.obs import get_registry

        handles = self._publish_many(tmp_path, 5)
        evicted_before = get_registry().counter("transport.attach.evicted").value
        for handle in handles:
            attach_view(handle)
        assert len(_attach_cache) == 2
        evictions = (
            get_registry().counter("transport.attach.evicted").value
            - evicted_before
        )
        assert evictions == 3

    def test_lru_order_keeps_recently_used(self, tmp_path):
        handles = self._publish_many(tmp_path, 3)
        first = attach_graph(handles[0])
        attach_graph(handles[1])
        # Touch [0] so it is most-recent; attaching [2] must evict [1].
        assert attach_graph(handles[0]) is first
        attach_graph(handles[2])
        assert attach_graph(handles[0]) is first
        assert attach_graph(handles[1]) is not None  # re-opened, not stale

    def test_eviction_does_not_invalidate_in_use_views(self, tmp_path):
        """A view handed out before its entry was evicted must keep
        reading valid data: eviction closes the shm segment quietly
        (BufferError-tolerant) rather than tearing pages out from under
        live readers."""
        graphs = [
            BarabasiAlbertGenerator(m=2).generate(40 + i, seed=i)
            for i in range(4)
        ]
        token = f"repro-lru-{os.getpid():x}"
        handles = [
            publish_graph(g, f"{token}-{i}", method="shm")
            for i, g in enumerate(graphs)
        ]
        try:
            live = attach_view(handles[0])
            expected = live.edge_arrays()[0].sum()
            for handle in handles[1:]:  # overflows the bound of 2
                attach_view(handle)
            # handles[0] has been evicted; the live view must still read.
            assert live.edge_arrays()[0].sum() == expected
            assert live.num_nodes == graphs[0].num_nodes
            # Re-attach after eviction produces a fresh, equivalent view.
            fresh = attach_view(handles[0])
            assert fresh is not live
            assert fresh.num_nodes == live.num_nodes
        finally:
            clear_attach_cache()
            for handle in handles:
                unlink_shared(handle)

    def test_shrinking_limit_evicts_excess_immediately(self, tmp_path):
        from repro.core.transport import _attach_cache

        set_attach_cache_limit(4)
        handles = self._publish_many(tmp_path, 4)
        for handle in handles:
            attach_view(handle)
        assert len(_attach_cache) == 4
        assert set_attach_cache_limit(2) == 4
        assert len(_attach_cache) == 2

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            set_attach_cache_limit(0)


class TestResolveTransport:
    def test_explicit_choices_pass_through(self):
        assert resolve_transport("regenerate", 10**6, 10) == "regenerate"
        assert resolve_transport("shared", 10, 1) == "shared"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("teleport")

    def test_auto_threshold_on_n_and_groups(self):
        assert resolve_transport("auto", AUTO_SHARED_NODES, AUTO_SHARED_GROUPS) == "shared"
        assert resolve_transport("auto", AUTO_SHARED_NODES - 1, 6) == "regenerate"
        assert resolve_transport("auto", AUTO_SHARED_NODES, AUTO_SHARED_GROUPS - 1) == "regenerate"

    def test_env_overrides_auto_but_not_explicit(self, monkeypatch):
        monkeypatch.setenv(REPRO_TRANSPORT_ENV, "shared")
        assert resolve_transport("auto", 10, 1) == "shared"
        assert resolve_transport("regenerate", 10**6, 10) == "regenerate"
        monkeypatch.setenv(REPRO_TRANSPORT_ENV, "regenerate")
        assert resolve_transport("auto", 10**6, 10) == "regenerate"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(REPRO_TRANSPORT_ENV, "warp")
        with pytest.raises(ValueError, match=REPRO_TRANSPORT_ENV):
            resolve_transport("auto", 10, 1)


class TestResolveMpContext:
    def test_default_is_platform_default(self):
        context = resolve_mp_context()
        assert context.get_start_method() == multiprocessing.get_start_method()

    def test_name_and_context_accepted(self):
        spawn = resolve_mp_context("spawn")
        assert spawn.get_start_method() == "spawn"
        assert resolve_mp_context(spawn) is spawn

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv(REPRO_MP_START_ENV, "spawn")
        assert resolve_mp_context().get_start_method() == "spawn"
        assert resolve_mp_context("fork").get_start_method() == "fork"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="start method"):
            resolve_mp_context("teleport")


class TestSnapshotSpool:
    def test_probe_miss_then_hit(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=4)
        assert spool.probe("ab12") is None
        published = spool.publish(g, "ab12", name="ba")
        hit = spool.probe("ab12")
        assert hit is not None and hit.fingerprint == published.fingerprint

    def test_corrupt_snapshot_evicted_as_miss(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        path = spool.path_for("cd34")
        path.mkdir(parents=True)
        (path / "meta.json").write_text("not json", encoding="utf-8")
        assert spool.probe("cd34") is None
        assert not path.exists()

    def test_ephemeral_refcount_unlinks_at_zero(self, monkeypatch, tmp_path):
        monkeypatch.setenv(REPRO_TRANSPORT_DIR_ENV, str(tmp_path))
        spool = SnapshotSpool()
        assert str(spool.root).startswith(str(tmp_path))
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=5)
        handle = spool.publish(g, "ef56")
        spool.probe("ef56")  # second reference
        spool.release("ef56")
        assert os.path.isdir(handle.location)
        spool.release("ef56")
        assert not os.path.isdir(handle.location)
        spool.cleanup()
        assert not spool.root.exists()

    def test_persistent_spool_keeps_snapshots(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=6)
        handle = spool.publish(g, "0a0b")
        spool.release("0a0b")
        assert os.path.isdir(handle.location)
        spool.cleanup()
        assert os.path.isdir(handle.location)

    def test_reap_staging_removes_only_tmp_dirs(self, tmp_path):
        spool = SnapshotSpool(tmp_path / "spool")
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=7)
        spool.publish(g, "1c1d", name="keep")
        orphan = spool.root / "9f" / "9fdead.tmp"
        orphan.mkdir(parents=True)
        (orphan / "indptr.npy").write_bytes(b"partial")
        assert spool.reap_staging() == 1
        assert not orphan.exists()
        assert spool.probe("1c1d") is not None


class DyingGenerator(TopologyGenerator):
    """Delegates to BA, but kills the worker process for configured seeds."""

    name = "deadly"

    def __init__(self, die_seeds=()):
        self.m = 2
        self._die_seeds = frozenset(die_seeds)
        self._delegate = BarabasiAlbertGenerator(m=2)

    def generate(self, n, seed=None):
        if seed in self._die_seeds:
            os._exit(13)
        return self._delegate.generate(n, seed=seed)


class TestSharedBatteryContainment:
    def test_crash_mid_battery_reaps_staging_on_pool_rebuild(self, tmp_path):
        """A worker dying mid-generation breaks the pool; the rebuild must
        reap orphaned snapshot staging directories, and the ephemeral
        transport machinery must not leak past the run."""
        from repro.stats.rng import derive_seed

        deadly = DyingGenerator()
        victim = derive_seed("battery-unit", "deadly", {"m": 2}, 150, 21, 0)
        deadly._die_seeds = frozenset([victim])
        cache = tmp_path / "cache"
        # Plant an orphaned staging dir exactly where a crashed publish
        # would leave one.
        orphan = cache / "snapshots" / "zz" / "zzdead.tmp"
        orphan.mkdir(parents=True)
        (orphan / "indices.npy").write_bytes(b"partial")
        result = run_battery(
            {"deadly": deadly, "ba": BarabasiAlbertGenerator(m=2)},
            n=150, seeds=1, base_seed=21, jobs=2, cache=cache,
            transport="shared", **FAST,
        )
        assert not orphan.exists()
        assert [rec.model for rec in result.failures] == ["deadly"]
        assert isinstance(result.entry("ba").summaries[0], TopologySummary)

    def test_ephemeral_spool_removed_after_uncached_run(self, monkeypatch, tmp_path):
        monkeypatch.setenv(REPRO_TRANSPORT_DIR_ENV, str(tmp_path))
        result = run_battery(
            ["barabasi-albert"], n=150, seeds=1, transport="shared", **FAST
        )
        assert result.transport == "shared"
        assert not result.failures
        assert list(tmp_path.iterdir()) == []


class TestSpawnRegression:
    def test_shared_battery_identical_under_spawn(self, tmp_path):
        fork = run_battery(
            ["barabasi-albert"], n=150, seeds=1, jobs=2,
            transport="shared", mp_context="fork", **FAST,
        )
        spawn = run_battery(
            ["barabasi-albert"], n=150, seeds=1, jobs=2,
            transport="shared", mp_context="spawn", **FAST,
        )
        serial = run_battery(
            ["barabasi-albert"], n=150, seeds=1, transport="regenerate", **FAST
        )
        expected = serial.entries[0].summaries[0].as_dict()
        assert fork.entries[0].summaries[0].as_dict() == expected
        assert spawn.entries[0].summaries[0].as_dict() == expected
        assert not fork.failures and not spawn.failures

    def test_experiment_pool_identical_under_spawn(self):
        from repro.core.experiment import replicate

        gen = BarabasiAlbertGenerator(m=2)
        serial = replicate(gen, 100, metric=_edge_count, seeds=3, jobs=1)
        spawned = replicate(
            gen, 100, metric=_edge_count, seeds=3, jobs=2, mp_context="spawn"
        )
        assert spawned.values == serial.values

    def test_calibrate_pool_identical_under_spawn(self):
        from repro.core.calibrate import grid_calibrate
        from repro.core.metrics import summarize

        target = summarize(BarabasiAlbertGenerator(m=2).generate(120, seed=3), seed=3)
        serial = grid_calibrate(
            BarabasiAlbertGenerator, {"m": [1, 2]}, target, n=100, seeds=2
        )
        spawned = grid_calibrate(
            BarabasiAlbertGenerator, {"m": [1, 2]}, target, n=100, seeds=2,
            jobs=2, mp_context="spawn",
        )
        assert spawned.trials == serial.trials
        assert spawned.best_params == serial.best_params


def _edge_count(graph):
    return float(graph.num_edges)


class TestCalibrateObs:
    def test_traced_calibration_adopts_worker_spans(self):
        from repro.core.calibrate import grid_calibrate
        from repro.core.metrics import summarize
        from repro.obs.tracer import Tracer, set_tracer

        target = summarize(BarabasiAlbertGenerator(m=2).generate(120, seed=3), seed=3)
        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            grid_calibrate(
                BarabasiAlbertGenerator, {"m": [1, 2]}, target,
                n=100, seeds=2, jobs=2,
            )
        finally:
            set_tracer(previous)
        spans = tracer.drain()
        names = [span.name for span in spans]
        assert names.count("calibration.point") == 2
        calibrate_span = next(s for s in spans if s.name == "calibrate")
        points = [s for s in spans if s.name == "calibration.point"]
        assert all(p.parent_id == calibrate_span.span_id for p in points)
        # Worker-side metric spans survive the trip home too.
        assert any(name.startswith("metric.") for name in names)
