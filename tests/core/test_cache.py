"""Cache-key and corruption-tolerance tests for the battery result cache."""

import json
import math

import pytest

from repro.core import NullCache, ResultCache, canonical_key, run_battery
from repro.core.battery import _cell_payload

SUM_PARAMS = {"path_sample_threshold": 1500, "path_samples": 400, "min_tail": 50}


def _payload(**overrides):
    base = dict(
        identity="glp",
        params={"m": 1.13, "p": 0.4695, "beta": 0.6447},
        n=2000,
        seed=12345,
        group="clustering",
        sum_params=SUM_PARAMS,
    )
    base.update(overrides)
    return _cell_payload(
        base["identity"], base["params"], base["n"], base["seed"],
        base["group"], base["sum_params"],
    )


class TestKeySensitivity:
    def test_key_is_stable(self):
        assert canonical_key(_payload()) == canonical_key(_payload())

    def test_generator_name_changes_key(self):
        assert canonical_key(_payload()) != canonical_key(_payload(identity="pfp"))

    def test_params_change_key(self):
        changed = _payload(params={"m": 1.14, "p": 0.4695, "beta": 0.6447})
        assert canonical_key(_payload()) != canonical_key(changed)

    def test_seed_changes_key(self):
        assert canonical_key(_payload()) != canonical_key(_payload(seed=12346))

    def test_size_changes_key(self):
        assert canonical_key(_payload()) != canonical_key(_payload(n=2001))

    def test_group_changes_key(self):
        assert canonical_key(_payload()) != canonical_key(_payload(group="paths"))

    def test_metric_version_changes_key(self):
        payload = _payload()
        bumped = dict(payload, version=payload["version"] + "-next")
        assert canonical_key(payload) != canonical_key(bumped)

    def test_param_order_does_not_change_key(self):
        a = _payload(params={"m": 1.13, "p": 0.4695})
        b = _payload(params={"p": 0.4695, "m": 1.13})
        assert canonical_key(a) == canonical_key(b)

    def test_irrelevant_sum_params_do_not_change_key(self):
        # Clustering does not depend on path sampling, so re-running with a
        # different path_samples must still hit the cached clustering cells.
        changed = dict(SUM_PARAMS, path_samples=999)
        assert canonical_key(_payload()) == canonical_key(
            _payload(sum_params=changed)
        )
        # ...but the paths group itself must miss.
        assert canonical_key(_payload(group="paths")) != canonical_key(
            _payload(group="paths", sum_params=changed)
        )


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = _payload()
        key = canonical_key(payload)
        cache.put(key, {"average_clustering": 0.25, "triangles": 12}, payload)
        assert cache.get(key, payload) == {"average_clustering": 0.25, "triangles": 12}
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_nan_survives_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = _payload(group="tail")
        key = canonical_key(payload)
        cache.put(key, {"degree_exponent": float("nan")}, payload)
        value = cache.get(key, payload)
        assert math.isnan(value["degree_exponent"])

    def test_float_bits_survive_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = _payload()
        key = canonical_key(payload)
        value = 0.1 + 0.2  # deliberately non-representable decimal
        cache.put(key, {"x": value}, payload)
        assert cache.get(key, payload)["x"] == value

    def test_miss_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.stats.misses == 1 and cache.stats.corrupt == 0

    def test_truncated_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = _payload()
        key = canonical_key(payload)
        cache.put(key, {"triangles": 12}, payload)
        path = cache._path(key)
        path.write_text(path.read_text()[:10], encoding="utf-8")  # truncate
        assert cache.get(key, payload) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # corrupt entry evicted

    def test_wrong_schema_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key(_payload())
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_payload_mismatch_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = canonical_key(_payload())
        cache.put(key, {"triangles": 12}, _payload())
        # Same file, different claimed payload: treat as corrupt, recompute.
        assert cache.get(key, _payload(seed=999)) is None
        assert cache.stats.corrupt == 1

    def test_corrupt_entry_recomputed_end_to_end(self, tmp_path):
        fast = {"min_tail": 20, "path_samples": 50, "path_sample_threshold": 100}
        first = run_battery(["glp"], n=120, seeds=1, cache=str(tmp_path), **fast)
        # Smash every cache file, then rerun: values must match the
        # originals (recomputed), not crash and not garbage.
        files = list(tmp_path.rglob("*.json"))
        assert files
        for path in files:
            path.write_text("{corrupt", encoding="utf-8")
        second = run_battery(["glp"], n=120, seeds=1, cache=str(tmp_path), **fast)
        assert second.stats.corrupt == len(files)
        assert second.stats.hits == 0
        assert first.entries[0].summaries == second.entries[0].summaries


class TestNullCache:
    def test_never_hits(self):
        cache = NullCache()
        cache.put("k", {"v": 1})
        assert cache.get("k") is None
        assert cache.stats.misses == 1
        assert cache.stats.writes == 0


class TestCorruptEntryEviction:
    """Whatever occupies a cache entry's path, get() must degrade to a
    counted miss and clear the way for the next put()."""

    def test_binary_garbage_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = _payload()
        key = canonical_key(payload)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xff\xfe\x00 not json")
        assert cache.get(key, payload) is None
        assert cache.stats.corrupt == 1 and cache.stats.misses == 1
        assert not path.exists()

    def test_directory_shaped_entry_is_evicted(self, tmp_path):
        # A directory at the entry path used to defeat unlink-based
        # eviction, re-counting as corrupt on every get forever.
        cache = ResultCache(tmp_path)
        key = canonical_key(_payload())
        path = cache._path(key)
        path.mkdir(parents=True)
        (path / "junk").write_text("x", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()
        # Next get is a clean (non-corrupt) miss, and put() works again.
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1 and cache.stats.misses == 2
        cache.put(key, {"ok": 1})
        assert cache.get(key) == {"ok": 1}
