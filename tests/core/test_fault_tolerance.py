"""Failure-injection harness for the fault-tolerant battery runner.

One crashing (or hanging, or dying) work unit must cost exactly its own
replicate: every other unit's results survive, the failure is recorded
with its traceback and seed (in ``BatteryResult.failures`` and the JSONL
journal), scoring skips the dead replicate with a warning, and — with a
cache — re-running recomputes only the failed cells.  Outcomes must stay
identical between ``jobs=1`` and ``jobs=N``.

The injected generators are module-level (picklable) and select their
victim by *seed*, because workers only ever see ``(n, seed)``; tests
compute the target replicate's derived seed with the same pure function
the runner uses.  Injection knobs live in private attributes so they stay
out of ``params()`` — the cache/seed identity must not depend on them
(that is what makes the resume test's "fixed generator" hit the broken
run's surviving cells).
"""

import math
import time

import pytest

from repro.core import (
    METRIC_GROUPS,
    PartialSummary,
    ResultCache,
    RunJournal,
    TopologySummary,
    compare_models,
    run_battery,
)
from repro.generators.barabasi_albert import BarabasiAlbertGenerator
from repro.generators.base import TopologyGenerator
from repro.stats.rng import derive_seed

from .test_parallel_battery import PARALLEL_JOBS, _assert_identical, _metric_dicts

N = 150
BASE_SEED = 21
SEEDS = 3
FAST = {"min_tail": 20, "path_samples": 50, "path_sample_threshold": 100}


class CrashingGenerator(TopologyGenerator):
    """Delegates to BA, but raises for the configured seeds."""

    name = "crashy"

    def __init__(self, fail_seeds=()):
        self.m = 2
        self._fail_seeds = frozenset(fail_seeds)
        self._delegate = BarabasiAlbertGenerator(m=2)

    def generate(self, n, seed=None):
        if seed in self._fail_seeds:
            raise RuntimeError(f"injected crash for seed {seed}")
        return self._delegate.generate(n, seed=seed)


class SleepingGenerator(TopologyGenerator):
    """Delegates to BA, but sleeps past any sane timeout for the
    configured seeds."""

    name = "sleepy"

    def __init__(self, sleep_seeds=(), sleep_seconds=2.0):
        self.m = 2
        self._sleep_seeds = frozenset(sleep_seeds)
        self._sleep_seconds = sleep_seconds
        self._delegate = BarabasiAlbertGenerator(m=2)

    def generate(self, n, seed=None):
        if seed in self._sleep_seeds:
            time.sleep(self._sleep_seconds)
        return self._delegate.generate(n, seed=seed)


class FlakyOnceGenerator(TopologyGenerator):
    """Fails the first attempt per seed, succeeds on retry.

    Cross-process "have I failed yet" state lives in sentinel files under
    a temp directory passed at construction (private attr, so it stays
    out of the cache identity).
    """

    name = "flaky-once"

    def __init__(self, fail_seeds=(), state_dir=None):
        self.m = 2
        self._fail_seeds = frozenset(fail_seeds)
        self._state_dir = state_dir
        self._delegate = BarabasiAlbertGenerator(m=2)

    def generate(self, n, seed=None):
        if seed in self._fail_seeds:
            sentinel = self._state_dir / f"attempted-{seed}"
            if not sentinel.exists():
                sentinel.write_text("1")
                raise RuntimeError(f"transient injected crash for seed {seed}")
        return self._delegate.generate(n, seed=seed)


def unit_seed(identity: str, replicate: int, n: int = N, base: int = BASE_SEED) -> int:
    """The runner's derived seed for (identity, {'m': 2}) at *replicate*."""
    return derive_seed("battery-unit", identity, {"m": 2}, n, base, replicate)


def _mixed_roster(crashy):
    """3-model roster: the injected model plus two healthy ones."""
    return {"crashy": crashy, "glp": "glp", "ba": "barabasi-albert"}


def _full_summaries(result):
    return [
        (entry.model, i)
        for entry in result.entries
        for i, summary in enumerate(entry.summaries)
        if isinstance(summary, TopologySummary)
    ]


class TestCrashContainment:
    @pytest.mark.parametrize("jobs", [1, PARALLEL_JOBS])
    def test_one_crash_costs_one_unit(self, jobs):
        victim = unit_seed("crashy", 1)
        result = run_battery(
            _mixed_roster(CrashingGenerator(fail_seeds=[victim])),
            n=N, seeds=SEEDS, base_seed=BASE_SEED, jobs=jobs, **FAST,
        )
        # 3 models x 3 replicates: exactly one unit failed, 8 survived.
        assert len(_full_summaries(result)) == 8
        (failure,) = result.failures
        assert failure.model == "crashy"
        assert failure.replicate == 1
        assert failure.seed == victim
        assert failure.status == "failed"
        assert "injected crash" in failure.error
        # The dead replicate's slot is an explicit failed PartialSummary.
        summary = result.entry("crashy").summaries[1]
        assert isinstance(summary, PartialSummary)
        assert summary.failed
        assert "injected crash" in summary.error

    def test_survivors_identical_across_jobs(self):
        victim = unit_seed("crashy", 1)
        roster = _mixed_roster(CrashingGenerator(fail_seeds=[victim]))
        serial = run_battery(
            roster, n=N, seeds=SEEDS, base_seed=BASE_SEED, jobs=1, **FAST
        )
        parallel = run_battery(
            roster, n=N, seeds=SEEDS, base_seed=BASE_SEED,
            jobs=PARALLEL_JOBS, **FAST,
        )
        assert _full_summaries(serial) == _full_summaries(parallel)
        assert [(f.model, f.replicate, f.seed, f.status) for f in serial.failures] == [
            (f.model, f.replicate, f.seed, f.status) for f in parallel.failures
        ]
        # Surviving metric values are bit-identical, as for clean runs.
        drop_failed = lambda result: {
            model: [
                summary.as_dict()
                for summary in result.entry(model).summaries
                if isinstance(summary, TopologySummary)
            ]
            for model in ("crashy", "glp", "ba")
        }
        _assert_identical(drop_failed(serial), drop_failed(parallel))

    def test_scoring_skips_failed_replicates_with_warning(self):
        victim = unit_seed("crashy", 0)
        with pytest.warns(RuntimeWarning, match="crashy.*1 of 3"):
            comparison = compare_models(
                _mixed_roster(CrashingGenerator(fail_seeds=[victim])),
                n=N, seeds=SEEDS, base_seed=BASE_SEED, **FAST,
            )
        score = comparison.score("crashy")
        assert len(score.scores) == 2
        assert len(score.summaries) == 2
        assert not math.isnan(score.mean)
        # Healthy models are fully scored.
        assert len(comparison.score("glp").scores) == SEEDS
        assert len(comparison.score("ba").scores) == SEEDS

    def test_all_replicates_failed_ranks_last_with_nan_mean(self):
        victims = [unit_seed("crashy", rep) for rep in range(SEEDS)]
        with pytest.warns(RuntimeWarning):
            comparison = compare_models(
                _mixed_roster(CrashingGenerator(fail_seeds=victims)),
                n=N, seeds=SEEDS, base_seed=BASE_SEED, **FAST,
            )
        score = comparison.score("crashy")
        assert score.scores == ()
        assert math.isnan(score.mean)
        assert comparison.ranking()[-1][0] == "crashy"

    def test_failure_rows_in_render_timing(self):
        victim = unit_seed("crashy", 2)
        result = run_battery(
            _mixed_roster(CrashingGenerator(fail_seeds=[victim])),
            n=N, seeds=SEEDS, base_seed=BASE_SEED, **FAST,
        )
        rendered = result.render_timing()
        assert "failed units" in rendered
        assert "injected crash" in rendered
        headers, rows = result.failure_table()
        assert headers == ["model", "replicate", "seed", "status", "error"]
        assert rows[0][:4] == ["crashy", 2, victim, "failed"]


class TestTimeout:
    @pytest.mark.parametrize("jobs", [1, PARALLEL_JOBS])
    def test_overrunning_unit_recorded_as_timeout(self, jobs):
        victim = unit_seed("sleepy", 0)
        roster = {
            "sleepy": SleepingGenerator(sleep_seeds=[victim], sleep_seconds=2.0),
            "ba": "barabasi-albert",
        }
        result = run_battery(
            roster, n=N, seeds=2, base_seed=BASE_SEED, jobs=jobs,
            timeout=0.5, **FAST,
        )
        (failure,) = result.failures
        assert failure.model == "sleepy"
        assert failure.replicate == 0
        assert failure.status == "timeout"
        assert "timeout" in failure.error.lower()
        # The other three units all completed.
        assert len(_full_summaries(result)) == 3

    def test_generous_timeout_is_a_no_op(self):
        clean = run_battery(
            ["barabasi-albert"], n=N, seeds=1, timeout=120.0, **FAST
        )
        assert clean.failures == []
        assert isinstance(clean.entries[0].summaries[0], TopologySummary)


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, PARALLEL_JOBS])
    def test_transient_failure_recovers_on_retry(self, tmp_path, jobs):
        victim = unit_seed("flaky-once", 1)
        generator = FlakyOnceGenerator(fail_seeds=[victim], state_dir=tmp_path)
        result = run_battery(
            {"flaky-once": generator, "ba": "barabasi-albert"},
            n=N, seeds=2, base_seed=BASE_SEED, jobs=jobs, retries=1, **FAST,
        )
        assert result.failures == []
        assert len(_full_summaries(result)) == 4

    def test_deterministic_failure_exhausts_retries(self, tmp_path):
        victim = unit_seed("crashy", 0)
        journal = tmp_path / "journal.jsonl"
        result = run_battery(
            {"crashy": CrashingGenerator(fail_seeds=[victim])},
            n=N, seeds=1, base_seed=BASE_SEED, retries=2,
            journal=journal, **FAST,
        )
        (failure,) = result.failures
        assert failure.status == "failed"
        events = RunJournal.read(journal)
        retries = [e for e in events if e["event"] == "unit_retry"]
        assert len(retries) == 2
        fails = [e for e in events if e["event"] == "unit_fail"]
        assert len(fails) == 1
        assert fails[0]["attempts"] == 3

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_battery(["barabasi-albert"], n=N, seeds=1, retries=-1, **FAST)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            run_battery(["barabasi-albert"], n=N, seeds=1, timeout=0.0, **FAST)


class TestJournal:
    @pytest.mark.parametrize("jobs", [1, PARALLEL_JOBS])
    def test_journal_records_failure_with_seed_and_traceback(self, tmp_path, jobs):
        victim = unit_seed("crashy", 1)
        journal = tmp_path / "run.jsonl"
        run_battery(
            _mixed_roster(CrashingGenerator(fail_seeds=[victim])),
            n=N, seeds=SEEDS, base_seed=BASE_SEED, jobs=jobs,
            journal=journal, **FAST,
        )
        events = RunJournal.read(journal)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "battery_start"
        assert kinds[-1] == "battery_end"
        fails = [e for e in events if e["event"] == "unit_fail"]
        assert len(fails) == 1
        assert fails[0]["model"] == "crashy"
        assert fails[0]["seed"] == victim
        assert "injected crash" in fails[0]["error"]
        finishes = [e for e in events if e["event"] == "unit_finish"]
        assert len(finishes) == 8
        assert all(e["seconds"] >= 0 for e in finishes)
        assert all("worker" in e for e in finishes)
        assert events[-1]["failures"] == 1

    def test_journal_records_cache_hits(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        cache = tmp_path / "cache"
        run_battery(["barabasi-albert"], n=N, seeds=1, cache=str(cache), **FAST)
        run_battery(
            ["barabasi-albert"], n=N, seeds=1, cache=str(cache),
            journal=journal, **FAST,
        )
        events = RunJournal.read(journal)
        hits = [e for e in events if e["event"] == "cache_hit"]
        assert len(hits) == len(METRIC_GROUPS)
        assert {e["group"] for e in hits} == set(METRIC_GROUPS)
        assert all("key" in e and "seed" in e for e in hits)


class TestResume:
    def test_rerun_recomputes_only_failed_cells(self, tmp_path):
        """The acceptance scenario: crash one unit of a 3x3 battery, then
        re-run with the crash fixed and the same cache dir — only the dead
        unit's cells (and nothing else) are recomputed."""
        victim = unit_seed("crashy", 1)
        cache = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning):
            broken = compare_models(
                _mixed_roster(CrashingGenerator(fail_seeds=[victim])),
                n=N, seeds=SEEDS, base_seed=BASE_SEED, cache=cache, **FAST,
            )
        assert len(broken.battery.failures) == 1
        surviving_cells = 8 * len(METRIC_GROUPS)
        assert broken.battery.stats.writes == surviving_cells + len(METRIC_GROUPS)

        fixed = compare_models(
            _mixed_roster(CrashingGenerator(fail_seeds=[])),
            n=N, seeds=SEEDS, base_seed=BASE_SEED, cache=cache, **FAST,
        )
        assert fixed.battery.failures == []
        # All 8 surviving units' cells and the target hit the cache...
        assert fixed.battery.stats.hits >= surviving_cells
        # ...and only the previously-failed unit is recomputed.
        assert fixed.battery.stats.misses == len(METRIC_GROUPS)
        assert len(fixed.score("crashy").scores) == SEEDS
