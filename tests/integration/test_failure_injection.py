"""Failure-injection tests: corrupted inputs, degenerate states, and
resource-exhaustion paths must fail loudly and precisely — never silently
produce wrong science."""

import math

import pytest

from repro.graph import Graph, parse_edge_list_lines, read_edge_list


class TestCorruptedInputs:
    def test_edge_list_with_garbage_line(self):
        with pytest.raises(ValueError, match="line 3"):
            parse_edge_list_lines(["1 2", "2 3", "this is not an edge list at all"])

    def test_edge_list_with_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            parse_edge_list_lines(["1 1"])

    def test_edge_list_with_bad_weight(self):
        with pytest.raises(ValueError):
            parse_edge_list_lines(["1 2 not-a-number"])

    def test_edge_list_with_nonpositive_weight(self):
        with pytest.raises(ValueError, match="positive"):
            parse_edge_list_lines(["1 2 0"])

    def test_truncated_json(self, tmp_path):
        import json

        path = tmp_path / "broken.json"
        path.write_text('{"name": "x", "edges": [[1, 2')
        from repro.graph import read_json

        with pytest.raises(json.JSONDecodeError):
            read_json(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_edge_list(tmp_path / "does-not-exist.txt")


class TestDegenerateGraphStates:
    def test_summary_rejects_empty(self):
        from repro.core import summarize

        with pytest.raises(ValueError):
            summarize(Graph())

    def test_metrics_on_single_node(self):
        from repro.core import summarize

        g = Graph()
        g.add_node(0)
        summary = summarize(g)
        assert summary.num_nodes == 1
        assert summary.average_degree == 0.0
        assert math.isnan(summary.degree_exponent)

    def test_spectral_rejects_trivial(self):
        from repro.graph import spectral_radius

        g = Graph()
        g.add_node(0)
        with pytest.raises(ValueError):
            spectral_radius(g)

    def test_economics_on_edgeless_graph(self):
        from repro.economics import assign_relationships

        g = Graph()
        g.add_nodes(range(5))
        rels = assign_relationships(g)
        assert rels.counts() == (0, 0)
        assert rels.tier_one() == set(range(5))


class TestResourceExhaustion:
    def test_pool_exhaustion_raises(self):
        from repro.environment import UserPool

        pool = UserPool(floor=1, seed=1)
        pool.add_node("only", 3)
        with pytest.raises(ValueError, match="above the floor"):
            pool.withdraw_users(10)

    def test_serrano_pool_exhaustion(self):
        # omega0 too large relative to growth: new nodes can't be seeded.
        from repro.generators import GenerationError, SerranoGenerator

        generator = SerranoGenerator(
            omega0=100, n0=2, alpha=0.031, beta=0.03
        )
        # alpha barely above beta: W/N stays ~omega0, so repeated spawning
        # must eventually drain the donors (or complete legitimately).
        try:
            generator.generate(200, seed=1)
        except GenerationError as error:
            assert "exhausted" in str(error)

    def test_gnm_overfull_raises(self):
        from repro.generators import ErdosRenyiGnm, GenerationError

        with pytest.raises(GenerationError):
            ErdosRenyiGnm(m=50).generate(5, seed=1)


class TestNanPropagation:
    def test_comparison_handles_nan_exponents(self, k4):
        from repro.core import compare_summaries, summarize

        flat = summarize(k4, min_tail=2)
        assert math.isnan(flat.degree_exponent)
        result = compare_summaries(flat, flat)
        # NaN vs NaN is agreement, not poison: the score stays finite.
        assert math.isfinite(result.score)

    def test_report_renders_nan(self):
        from repro.core import format_table

        text = format_table(["gamma"], [[float("nan")]])
        assert "n/a" in text
        assert "nan" not in text.lower().replace("n/a", "")
