"""Cross-module integration tests: full pipelines end to end."""

import pytest

import repro
from repro.core import grid_calibrate, summarize
from repro.economics import assign_relationships, gravity_flows, route_flows, settle_market
from repro.generators import GlpGenerator, SerranoGenerator
from repro.graph import giant_component, read_edge_list, write_edge_list


class TestGenerateMeasureCompare:
    def test_full_loop_every_growth_model(self):
        ref = repro.reference_as_map(400)
        for model in ("barabasi-albert", "glp", "pfp", "serrano"):
            g = repro.generate(model, n=400, seed=9)
            result = repro.compare(g, ref)
            assert result.score < 2.0, model

    def test_serialization_roundtrip_preserves_summary(self, tmp_path):
        g = repro.generate("glp", n=300, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        a = summarize(g, seed=0)
        b = summarize(loaded, seed=0)
        assert a.num_edges == b.num_edges
        assert a.average_clustering == pytest.approx(b.average_clustering)
        assert a.degeneracy == b.degeneracy


class TestEconomicsOnEveryTopology:
    @pytest.mark.parametrize("model", ["glp", "pfp", "inet", "barabasi-albert"])
    def test_settlement_pipeline(self, model):
        g = giant_component(repro.generate(model, n=250, seed=4))
        rels = assign_relationships(g)
        pops = {node: 1.0 + g.degree(node) for node in g.nodes()}
        matrix = gravity_flows(pops, num_flows=300, seed=5)
        traffic = route_flows(g, rels, matrix)
        report = settle_market(g, rels, traffic, users=pops)
        assert len(report.books) == g.num_nodes
        # Transit money conserves across the market.
        revenue = sum(b.transit_revenue for b in report.books.values())
        cost = sum(b.transit_cost for b in report.books.values())
        assert revenue == pytest.approx(cost)


class TestSerranoEconomyUsesItsOwnUsers:
    def test_user_counts_flow_through(self):
        run = SerranoGenerator().generate_detailed(300, seed=6)
        g = giant_component(run.graph)
        users = {node: run.users[node] for node in g.nodes()}
        rels = assign_relationships(g)
        matrix = gravity_flows(users, num_flows=200, seed=7)
        traffic = route_flows(g, rels, matrix)
        report = settle_market(g, rels, traffic, users=users)
        # Retail revenue must reflect simulated user counts, not defaults.
        biggest = max(users, key=users.get)
        assert report.books[biggest].retail_revenue > 2.0


class TestCalibrationAgainstReference:
    def test_glp_density_calibrates_toward_reference(self):
        target = summarize(repro.reference_as_map(400), seed=0)
        result = grid_calibrate(
            lambda p: GlpGenerator(p=p),
            {"p": [0.1, 0.45, 0.8]},
            target,
            n=400,
            seeds=1,
        )
        # The published p=0.4695 region should beat the extremes.
        assert result.best_params["p"] == 0.45


class TestCliRoundtrip:
    def test_generate_summarize_compare(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "g.txt"
        assert main(["generate", "pfp", "-n", "250", "-s", "2", "-o", str(out)]) == 0
        assert main(["summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "degeneracy" in text
