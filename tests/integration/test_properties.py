"""Cross-cutting property-based tests (hypothesis) on pipeline invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    BarabasiAlbertGenerator,
    GlpGenerator,
    PfpGenerator,
    configuration_model,
    rewired_reference,
)
from repro.graph import (
    betweenness_centrality,
    connected_components,
    core_numbers,
    cycle_counts_3_4_5,
    local_clustering,
    total_triangles,
)


class TestGrowthModelInvariants:
    @given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_ba_always_connected_exact_size(self, n, seed):
        g = BarabasiAlbertGenerator(m=2).generate(n, seed=seed)
        assert g.num_nodes == n
        assert len(connected_components(g)) == 1

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_glp_handshake_and_connectivity(self, seed):
        g = GlpGenerator().generate(60, seed=seed)
        assert sum(g.degrees().values()) == 2 * g.num_edges
        assert len(connected_components(g)) == 1

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_pfp_no_duplicate_edges(self, seed):
        g = PfpGenerator().generate(50, seed=seed)
        edges = [frozenset(e) for e in g.edges()]
        assert len(edges) == len(set(edges))


class TestStructuralInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=6), min_size=4, max_size=30)
    )
    @settings(max_examples=40, deadline=None)
    def test_configuration_model_degree_bound(self, degrees):
        if sum(degrees) % 2 == 1:
            degrees[0] += 1
        g = configuration_model(degrees, seed=1)
        for node, d in g.degrees().items():
            assert d <= degrees[node]

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_rewiring_preserves_degrees_exactly(self, seed):
        g = BarabasiAlbertGenerator(m=2).generate(60, seed=seed)
        null = rewired_reference(g, swaps_per_edge=3, seed=seed)
        assert null.degrees() == g.degrees()


class TestMetricInvariants:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_clustering_bounded(self, seed):
        g = GlpGenerator().generate(80, seed=seed)
        for value in local_clustering(g).values():
            assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_coreness_bounded_by_degree(self, seed):
        g = PfpGenerator().generate(60, seed=seed)
        cores = core_numbers(g)
        for node, c in cores.items():
            assert c <= g.degree(node)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_betweenness_nonnegative_normalized(self, seed):
        g = BarabasiAlbertGenerator(m=1).generate(50, seed=seed)
        for value in betweenness_centrality(g).values():
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_triangle_count_consistency(self, seed):
        # Trace-identity triangle count equals neighborhood-intersection count.
        g = GlpGenerator().generate(70, seed=seed)
        assert cycle_counts_3_4_5(g)[3] == total_triangles(g)


class TestEconomicsInvariants:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_tiers_start_at_one_and_are_contiguous_enough(self, seed):
        from repro.economics import assign_relationships
        from repro.graph import giant_component

        g = giant_component(GlpGenerator().generate(80, seed=seed))
        tiers = assign_relationships(g).tiers()
        assert min(tiers.values()) == 1
        assert max(tiers.values()) <= 12

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=6, deadline=None)
    def test_routing_paths_terminate(self, seed):
        from repro.economics import assign_relationships, routing_table
        from repro.graph import giant_component

        g = giant_component(PfpGenerator().generate(60, seed=seed))
        rels = assign_relationships(g)
        destination = next(iter(sorted(g.nodes(), key=str)))
        table = routing_table(g, rels, destination)
        for source in g.nodes():
            path = table.path_from(source)
            if path is not None:
                assert path[0] == source
                assert path[-1] == destination
                assert len(path) <= g.num_nodes
