"""SQLite backend: schema, ingestion semantics, id fidelity."""

import sqlite3

import pytest

from repro.graph import Graph
from repro.store import SQLiteGraphStore, StoreError


def small_graph():
    g = Graph(name="small")
    g.add_nodes([0, 1, 2, "iso", "srv-9"])
    g.add_edges([(0, 1), (1, 2, 2.5), (2, 0), ("srv-9", 0, 0.5)])
    return g


class TestLifecycle:
    def test_create_and_reopen(self, tmp_path):
        path = tmp_path / "g.db"
        with SQLiteGraphStore(path) as db:
            db.append_nodes([0, 1])
            db.append_edges([(0, 1)])
            db.commit()
        with SQLiteGraphStore(path, create=False) as db:
            assert db.num_nodes == 2
            assert db.num_edges == 1

    def test_missing_without_create_raises(self, tmp_path):
        with pytest.raises(StoreError):
            SQLiteGraphStore(tmp_path / "nope.db", create=False)

    def test_foreign_sqlite_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError):
            SQLiteGraphStore(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"\x00\x01 not a database \xff" * 40)
        with pytest.raises(StoreError):
            SQLiteGraphStore(path)

    def test_wal_mode(self, tmp_path):
        path = tmp_path / "g.db"
        SQLiteGraphStore(path).close()
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        conn.close()


class TestIngestion:
    def test_node_order_preserved(self, tmp_path):
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes([5, "b", 3, 0])
            assert db.node_ids() == [5, "b", 3, 0]

    def test_duplicate_nodes_skipped(self, tmp_path):
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            assert db.append_nodes([1, 2]) == 2
            assert db.append_nodes([2, 3]) == 1
            assert db.num_nodes == 3

    def test_edge_requires_registered_endpoints(self, tmp_path):
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes([1])
            with pytest.raises(StoreError):
                db.append_edges([(1, 99)])

    def test_self_loop_rejected(self, tmp_path):
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes([1])
            with pytest.raises(StoreError):
                db.append_edges([(1, 1)])

    def test_duplicate_edge_accumulates_weight(self, tmp_path):
        # Mirrors Graph.add_edge reinforcement semantics.
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes([1, 2])
            db.append_edges([(1, 2), (2, 1, 1.5)])
            assert db.num_edges == 1
            assert db.total_weight == pytest.approx(2.5)

    def test_load_graph_round_trip(self, tmp_path):
        g = small_graph()
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes(list(g.nodes()))
            db.append_edges(list(g.weighted_edges()))
            db.commit()
        with SQLiteGraphStore(tmp_path / "g.db", create=False) as db:
            loaded = db.load_graph(name="small")
        assert loaded.fingerprint() == g.fingerprint()
        assert list(loaded.nodes()) == list(g.nodes())

    def test_id_types_survive(self, tmp_path):
        # int 1 and str "1" are distinct nodes and must stay distinct.
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes([1, "1"])
            assert db.node_ids() == [1, "1"]

    def test_meta_round_trip(self, tmp_path):
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.set_meta("growth", {"model": "plrg", "n": 10})
            db.commit()
        with SQLiteGraphStore(tmp_path / "g.db", create=False) as db:
            assert db.get_meta("growth") == {"model": "plrg", "n": 10}
            assert db.get_meta("absent", "fallback") == "fallback"


class TestCsrArrays:
    def test_matches_graph_csr(self, tmp_path):
        g = small_graph()
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            db.append_nodes(list(g.nodes()))
            db.append_edges(list(g.weighted_edges()))
            indptr, indices, weights, ids = db.csr_arrays()
        view = g.csr()
        assert list(indptr) == list(view.indptr)
        assert list(indices) == list(view.indices)
        assert list(weights) == list(view.weights)
        assert ids == list(view.nodes)

    def test_empty_store(self, tmp_path):
        with SQLiteGraphStore(tmp_path / "g.db") as db:
            indptr, indices, weights, ids = db.csr_arrays()
        assert list(indptr) == [0]
        assert len(indices) == 0 and len(weights) == 0 and ids == []
