"""Checkpointed growth: chunking, crash resume, identity guards."""

import pytest

from repro.core.registry import make_generator
from repro.store import GraphStore, StoreError, grow_to_store
from repro.store.sqlite import SQLiteGraphStore


def plrg():
    return make_generator("plrg", gamma=2.2)


class TestChunking:
    def test_checkpointed_equals_one_shot(self, tmp_path):
        chunked = grow_to_store(
            plrg(), 400, tmp_path / "chunked.db", seed=5, checkpoint_every=64
        )
        oneshot = grow_to_store(
            plrg(), 400, tmp_path / "oneshot.db", seed=5, checkpoint_every=10**9
        )
        assert chunked.fingerprint == oneshot.fingerprint
        assert chunked.chunks_written == 7
        assert oneshot.chunks_written == 1

    def test_complete_store_short_circuits(self, tmp_path):
        first = grow_to_store(
            plrg(), 300, tmp_path / "w.db", seed=3, checkpoint_every=100
        )
        again = grow_to_store(
            plrg(), 300, tmp_path / "w.db", seed=3, checkpoint_every=100
        )
        assert first.regenerated and not again.regenerated
        assert again.fingerprint == first.fingerprint
        assert again.chunks_written == 0

    def test_save_checkpointed_equals_bulk(self, tmp_path):
        graph = plrg().generate(300, seed=11)
        GraphStore(tmp_path / "bulk.db").save(graph)
        GraphStore(tmp_path / "chunked.db").save(graph, checkpoint_every=50)
        assert (
            GraphStore.open(tmp_path / "bulk.db").load().fingerprint()
            == GraphStore.open(tmp_path / "chunked.db").load().fingerprint()
            == graph.fingerprint()
        )


class TestCrashResume:
    def test_resume_after_mid_growth_crash(self, tmp_path, monkeypatch):
        """Kill ingestion after a few chunk commits; resume must finish the
        store and match a one-shot run bit for bit."""
        path = tmp_path / "crash.db"
        real_commit = SQLiteGraphStore.commit
        commits = {"count": 0}

        def flaky_commit(self):
            # Growth identity commit + 3 chunk commits, then the "crash".
            if commits["count"] >= 4:
                raise RuntimeError("simulated crash")
            commits["count"] += 1
            real_commit(self)

        monkeypatch.setattr(SQLiteGraphStore, "commit", flaky_commit)
        with pytest.raises(RuntimeError, match="simulated crash"):
            grow_to_store(plrg(), 400, path, seed=5, checkpoint_every=64)
        monkeypatch.setattr(SQLiteGraphStore, "commit", real_commit)

        with SQLiteGraphStore(path, create=False) as db:
            committed_before = len(db.committed_chunks())
            assert 0 < committed_before < 7
            assert not db.get_meta("complete", False)

        resumed = grow_to_store(plrg(), 400, path, seed=5, checkpoint_every=64)
        assert resumed.regenerated
        assert resumed.chunks_resumed == committed_before
        assert resumed.chunks_written == 7 - committed_before

        oneshot = grow_to_store(
            plrg(), 400, tmp_path / "oneshot.db", seed=5, checkpoint_every=64
        )
        assert resumed.fingerprint == oneshot.fingerprint
        assert (
            GraphStore.open(path).load().fingerprint() == oneshot.fingerprint
        )

    def test_incomplete_store_not_reusable_as_world(self, tmp_path, monkeypatch):
        from repro.store import StoredTopologyGenerator

        path = tmp_path / "partial.db"
        real_commit = SQLiteGraphStore.commit
        commits = {"count": 0}

        def flaky_commit(self):
            if commits["count"] >= 2:
                raise RuntimeError("boom")
            commits["count"] += 1
            real_commit(self)

        monkeypatch.setattr(SQLiteGraphStore, "commit", flaky_commit)
        with pytest.raises(RuntimeError):
            grow_to_store(plrg(), 400, path, seed=5, checkpoint_every=64)
        monkeypatch.setattr(SQLiteGraphStore, "commit", real_commit)
        with pytest.raises(StoreError):
            StoredTopologyGenerator(path)


class TestIdentityGuards:
    def test_different_seed_refused(self, tmp_path):
        grow_to_store(plrg(), 200, tmp_path / "w.db", seed=1, checkpoint_every=50)
        with pytest.raises(StoreError):
            grow_to_store(plrg(), 200, tmp_path / "w.db", seed=2, checkpoint_every=50)

    def test_different_params_refused(self, tmp_path):
        grow_to_store(plrg(), 200, tmp_path / "w.db", seed=1, checkpoint_every=50)
        other = make_generator("plrg", gamma=2.7)
        with pytest.raises(StoreError):
            grow_to_store(other, 200, tmp_path / "w.db", seed=1, checkpoint_every=50)

    def test_foreign_saved_store_refused(self, tmp_path):
        graph = plrg().generate(100, seed=1)
        GraphStore(tmp_path / "w.db").save(graph)
        with pytest.raises(StoreError):
            grow_to_store(plrg(), 100, tmp_path / "w.db", seed=1, checkpoint_every=50)

    def test_save_over_different_graph_refused(self, tmp_path):
        store = GraphStore(tmp_path / "w.db")
        store.save(plrg().generate(100, seed=1))
        with pytest.raises(StoreError):
            store.save(plrg().generate(100, seed=2))
