"""Stored worlds in the battery: fingerprint-keyed cache cells."""

import pytest

from repro.core.battery import run_battery
from repro.core.cache import ResultCache
from repro.core.registry import available_models, make_generator, resolve_generator
from repro.generators.base import GenerationError
from repro.store import StoredTopologyGenerator, grow_to_store


@pytest.fixture
def world_path(tmp_path):
    grow_to_store(
        make_generator("plrg", gamma=2.2),
        300,
        tmp_path / "world.db",
        seed=13,
        checkpoint_every=100,
    )
    return tmp_path / "world.db"


class TestGeneratorProtocol:
    def test_instance_resolves_but_stays_out_of_registry(self, world_path):
        # Stored worlds are not synthesizable families (no-arg construction,
        # seed determinism), so they enter batteries as instances, not names.
        world = StoredTopologyGenerator(world_path)
        assert world.name == "stored"
        assert world.num_nodes == 300
        assert resolve_generator(world) is world
        assert "stored" not in available_models()

    def test_generate_loads_stored_graph(self, world_path):
        world = StoredTopologyGenerator(world_path)
        graph = world.generate(300, seed=999)  # seed must not matter
        assert graph.fingerprint() == world.fingerprint

    def test_wrong_n_raises(self, world_path):
        world = StoredTopologyGenerator(world_path)
        with pytest.raises(GenerationError):
            world.generate(299)

    def test_params_expose_only_fingerprint(self, world_path):
        world = StoredTopologyGenerator(world_path)
        assert world.params() == {"fingerprint": world.fingerprint}


class TestCacheKeying:
    def test_cells_hit_across_path_moves(self, world_path, tmp_path):
        """Cache identity is the fingerprint, not the file path."""
        cache = ResultCache(tmp_path / "cache")
        world = StoredTopologyGenerator(world_path)
        run_battery({"w": world}, n=300, seeds=2, groups=["size"], cache=cache)
        first = cache.stats.snapshot()
        assert first.writes == 2 and first.hits == 0

        moved = world_path.with_name("moved.db")
        world_path.rename(moved)
        snapshot = world_path.with_name(world_path.name + ".csr")
        if snapshot.exists():
            snapshot.rename(moved.with_name(moved.name + ".csr"))
        relocated = StoredTopologyGenerator(moved)
        run_battery({"w": relocated}, n=300, seeds=2, groups=["size"], cache=cache)
        delta = cache.stats.delta(first)
        assert delta.hits == 2 and delta.writes == 0

    def test_different_worlds_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for seed in (1, 2):
            grow_to_store(
                make_generator("plrg", gamma=2.2),
                200,
                tmp_path / f"w{seed}.db",
                seed=seed,
                checkpoint_every=100,
            )
        a = StoredTopologyGenerator(tmp_path / "w1.db")
        b = StoredTopologyGenerator(tmp_path / "w2.db")
        assert a.fingerprint != b.fingerprint
        run_battery({"w": a}, n=200, seeds=1, groups=["size"], cache=cache)
        run_battery({"w": b}, n=200, seeds=1, groups=["size"], cache=cache)
        assert cache.stats.hits == 0 and cache.stats.writes == 2
