"""Property-based round trips: every persistence path is fingerprint-exact.

One random-graph strategy drives all four persistence formats — edge
list, adjacency JSON, SQLite store, mmap CSR snapshot — over the inputs
that historically broke them: isolated nodes, mixed int/str ids,
reinforced (multi-weight) edges.

String ids are letters only: the edge-list format is whitespace-split
and re-parses integer-looking tokens as ints, so ids with spaces or
digit-only strings are out of its vocabulary by design.  Weights are
quarter steps — exact in binary and under the writer's ``%g`` rendering
— so equality means *identity*, not closeness.
"""

import string

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import Graph
from repro.graph.io import (
    edge_list_lines,
    parse_edge_list_lines,
    read_json,
    write_json,
)
from repro.store import GraphStore, load_csr_snapshot, save_csr_snapshot

node_ids = st.one_of(
    st.integers(min_value=0, max_value=40),
    st.text(alphabet=string.ascii_letters, min_size=1, max_size=6),
)

weights = st.integers(min_value=1, max_value=16).map(lambda q: q / 4.0)


@st.composite
def graphs(draw):
    """Graphs with isolated nodes, mixed id types, accumulated weights."""
    nodes = draw(st.lists(node_ids, min_size=1, max_size=25, unique=True))
    g = Graph(name="prop")
    g.add_nodes(nodes)
    if len(nodes) >= 2:
        edges = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(nodes),
                    st.sampled_from(nodes),
                    weights,
                ),
                max_size=40,
            )
        )
        # add_edges reinforces repeated pairs, producing multi-weight edges.
        g.add_edges((u, v, w) for u, v, w in edges if u != v)
    return g


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_edge_list_round_trip(g):
    restored = parse_edge_list_lines(edge_list_lines(g), name=g.name)
    assert restored.fingerprint() == g.fingerprint()


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_json_round_trip(tmp_path_factory, g):
    path = tmp_path_factory.mktemp("json") / "g.json"
    write_json(g, path)
    assert read_json(path).fingerprint() == g.fingerprint()


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_sqlite_store_round_trip(tmp_path_factory, g):
    path = tmp_path_factory.mktemp("store") / "g.db"
    store = GraphStore(path)
    store.save(g, snapshot=False)
    assert store.load().fingerprint() == g.fingerprint()


@given(graphs(), st.integers(min_value=1, max_value=7))
@settings(max_examples=25, deadline=None)
def test_chunked_save_round_trip(tmp_path_factory, g, every):
    path = tmp_path_factory.mktemp("store") / "g.db"
    store = GraphStore(path)
    store.save(g, checkpoint_every=every, snapshot=False)
    assert store.load().fingerprint() == g.fingerprint()


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_snapshot_round_trip(tmp_path_factory, g):
    view = g.csr()
    path = tmp_path_factory.mktemp("snap") / "g.csr"
    save_csr_snapshot(path, view, name=g.name, fingerprint=g.fingerprint())
    loaded = load_csr_snapshot(path)
    assert list(loaded.indptr) == list(view.indptr)
    assert list(loaded.indices) == list(view.indices)
    assert list(loaded.weights) == list(view.weights)
    assert list(loaded.nodes) == list(view.nodes)
