"""GraphStore facade: snapshot coherence and view-only measurement."""

import shutil

import pytest

from repro.core.metrics import compute_metric_groups
from repro.core.registry import make_generator
from repro.graph import Graph
from repro.store import GraphStore, StoreError
from repro.store.measure import view_size_group


def sample_graph():
    return make_generator("plrg", gamma=2.2).generate(250, seed=8)


class TestFacade:
    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(StoreError):
            GraphStore.open(tmp_path / "nope.db")

    def test_save_load_round_trip(self, tmp_path):
        g = sample_graph()
        store = GraphStore(tmp_path / "w.db")
        info = store.save(g)
        assert info["complete"] and info["snapshot"] == "fresh"
        assert store.load().fingerprint() == g.fingerprint()

    def test_save_same_graph_is_idempotent(self, tmp_path):
        g = sample_graph()
        store = GraphStore(tmp_path / "w.db")
        store.save(g)
        info = store.save(g)  # same fingerprint: allowed
        assert info["num_edges"] == g.num_edges

    def test_graph_convenience_methods(self, tmp_path):
        g = sample_graph()
        g.to_store(tmp_path / "w.db")
        assert Graph.from_store(tmp_path / "w.db").fingerprint() == g.fingerprint()


class TestSnapshotCoherence:
    def test_csr_uses_fresh_snapshot(self, tmp_path):
        g = sample_graph()
        store = GraphStore(tmp_path / "w.db")
        store.save(g)
        view = store.csr()
        assert view.num_nodes == g.num_nodes
        assert list(view.indptr) == list(g.csr().indptr)

    def test_csr_rebuilds_missing_snapshot(self, tmp_path):
        g = sample_graph()
        store = GraphStore(tmp_path / "w.db")
        store.save(g, snapshot=False)
        assert store.info()["snapshot"] == "absent"
        view = store.csr()
        assert view.num_edges == g.num_edges
        assert store.info()["snapshot"] == "fresh"

    def test_csr_rebuilds_torn_snapshot(self, tmp_path):
        g = sample_graph()
        store = GraphStore(tmp_path / "w.db")
        store.save(g)
        (store.snapshot_path / "meta.json").write_text("{ torn")
        assert store.info()["snapshot"] == "corrupt"
        view = store.csr()
        assert list(view.indices) == list(g.csr().indices)
        assert store.info()["snapshot"] == "fresh"

    def test_csr_rebuilds_stale_snapshot(self, tmp_path):
        # A snapshot stamped with a different fingerprint (e.g. copied from
        # another store) must be ignored and rewritten.
        a, b = sample_graph(), make_generator("plrg", gamma=2.6).generate(250, seed=9)
        store_a = GraphStore(tmp_path / "a.db")
        store_b = GraphStore(tmp_path / "b.db")
        store_a.save(a)
        store_b.save(b)
        shutil.rmtree(store_b.snapshot_path)
        shutil.copytree(store_a.snapshot_path, store_b.snapshot_path)
        assert store_b.info()["snapshot"] == "stale"
        view = store_b.csr()
        assert view.num_edges == b.num_edges


class TestMeasure:
    def test_size_group_matches_graph_metrics(self, tmp_path):
        g = sample_graph()
        store = GraphStore(tmp_path / "w.db")
        store.save(g)
        from_view = store.measure()
        from_graph = compute_metric_groups(g, groups=["size"])["size"]
        for key, value in from_graph.items():
            assert from_view[key] == pytest.approx(value), key

    def test_isolated_nodes_counted_in_giant_fraction(self, tmp_path):
        g = Graph(name="iso")
        g.add_nodes(range(10))
        g.add_edges([(0, 1), (1, 2), (2, 0)])  # 7 isolated nodes
        store = GraphStore(tmp_path / "w.db")
        store.save(g)
        measured = store.measure()
        assert measured["giant_fraction"] == pytest.approx(0.3)
        assert measured["num_nodes"] == 3

    def test_empty_view_raises(self):
        from repro.graph.csr import CSRView
        import numpy as np

        empty = CSRView(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            [],
        )
        with pytest.raises(ValueError):
            view_size_group(empty)
