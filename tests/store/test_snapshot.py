"""mmap CSR snapshots: atomicity, range mode, torn-write detection."""

import json

import numpy as np
import pytest

from repro.graph import Graph
from repro.store import load_csr_snapshot, save_csr_snapshot, snapshot_info


def int_graph():
    g = Graph(name="ints")
    g.add_nodes(range(6))
    g.add_edges([(0, 1), (1, 2, 2.0), (2, 0), (3, 4)])  # node 5 isolated
    return g


def string_graph():
    g = Graph(name="strs")
    g.add_nodes(["a", "b", 7, "iso"])
    g.add_edges([("a", "b"), ("b", 7, 0.5)])
    return g


class TestRoundTrip:
    def test_view_round_trip(self, tmp_path):
        g = int_graph()
        view = g.csr()
        save_csr_snapshot(tmp_path / "snap", view, name="ints", fingerprint=g.fingerprint())
        loaded = load_csr_snapshot(tmp_path / "snap")
        assert list(loaded.indptr) == list(view.indptr)
        assert list(loaded.indices) == list(view.indices)
        assert list(loaded.weights) == list(view.weights)
        assert list(loaded.nodes) == list(view.nodes)

    def test_range_mode_for_positional_ids(self, tmp_path):
        save_csr_snapshot(tmp_path / "snap", int_graph().csr())
        meta = snapshot_info(tmp_path / "snap")
        assert meta["nodes"] == "range"
        assert not (tmp_path / "snap" / "nodes.json").exists()
        loaded = load_csr_snapshot(tmp_path / "snap")
        assert isinstance(loaded.nodes, range)

    def test_json_mode_for_arbitrary_ids(self, tmp_path):
        g = string_graph()
        save_csr_snapshot(tmp_path / "snap", g.csr())
        meta = snapshot_info(tmp_path / "snap")
        assert meta["nodes"] == "json"
        loaded = load_csr_snapshot(tmp_path / "snap")
        assert list(loaded.nodes) == list(g.csr().nodes)

    def test_mmap_backed_and_readonly(self, tmp_path):
        save_csr_snapshot(tmp_path / "snap", int_graph().csr())
        loaded = load_csr_snapshot(tmp_path / "snap")
        assert isinstance(loaded.indptr, np.memmap)
        assert not loaded.indices.flags.writeable

    def test_overwrite_is_atomic_rename(self, tmp_path):
        g = int_graph()
        save_csr_snapshot(tmp_path / "snap", g.csr(), fingerprint=1)
        save_csr_snapshot(tmp_path / "snap", g.csr(), fingerprint=2)
        assert snapshot_info(tmp_path / "snap")["fingerprint"] == 2
        assert not (tmp_path / "snap.tmp").exists()


class TestTornSnapshots:
    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            snapshot_info(tmp_path / "nope")
        with pytest.raises(FileNotFoundError):
            load_csr_snapshot(tmp_path / "nope")

    def test_truncated_meta(self, tmp_path):
        save_csr_snapshot(tmp_path / "snap", int_graph().csr())
        (tmp_path / "snap" / "meta.json").write_text('{"format": 1, "num')
        with pytest.raises(ValueError):
            snapshot_info(tmp_path / "snap")

    def test_foreign_format_version(self, tmp_path):
        save_csr_snapshot(tmp_path / "snap", int_graph().csr())
        meta = json.loads((tmp_path / "snap" / "meta.json").read_text())
        meta["format"] = 999
        (tmp_path / "snap" / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            snapshot_info(tmp_path / "snap")

    def test_truncated_array(self, tmp_path):
        save_csr_snapshot(tmp_path / "snap", int_graph().csr())
        indptr = tmp_path / "snap" / "indptr.npy"
        indptr.write_bytes(indptr.read_bytes()[:16])
        with pytest.raises(ValueError):
            load_csr_snapshot(tmp_path / "snap")

    def test_array_meta_disagreement(self, tmp_path):
        save_csr_snapshot(tmp_path / "snap", int_graph().csr())
        meta = json.loads((tmp_path / "snap" / "meta.json").read_text())
        meta["num_nodes"] += 1
        (tmp_path / "snap" / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_csr_snapshot(tmp_path / "snap")
