"""Store-layer telemetry: ingest counters, chunk spans, snapshot bytes."""

import pytest

from repro.core.registry import make_generator
from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer
from repro.store import grow_to_store


@pytest.fixture
def obs():
    """Fresh ambient tracer + registry, restored afterwards."""
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_registry = set_registry(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)


class TestStoreTelemetry:
    def test_grow_publishes_rows_chunks_and_snapshot_bytes(self, tmp_path, obs):
        tracer, registry = obs
        report = grow_to_store(
            make_generator("plrg", gamma=2.2),
            400,
            tmp_path / "g.db",
            seed=5,
            checkpoint_every=100,
        )
        counters = registry.snapshot()["counters"]
        assert counters["store.rows.nodes"] == report.num_nodes
        assert counters["store.rows.edges"] == report.num_edges
        assert counters["store.chunks.written"] == report.chunks_written == 4
        assert counters["store.chunks.resumed"] == 0
        # The snapshot directory's arrays + sidecars all count as bytes.
        assert counters["store.snapshot.bytes_written"] > 0

        histograms = registry.snapshot()["histograms"]
        assert histograms["store.chunk.seconds"]["count"] == 4
        assert histograms["store.ingest.rows_per_second"]["count"] >= 4
        assert histograms["store.ingest.rows_per_second"]["min"] > 0

        names = [span.name for span in tracer.spans]
        assert names.count("store.chunk") == 4
        chunk_spans = [s for s in tracer.spans if s.name == "store.chunk"]
        assert [s.attrs["chunk"] for s in chunk_spans] == [0, 1, 2, 3]
        # Chunk spans nest under the store.grow span.
        grow = next(s for s in tracer.spans if s.name == "store.grow")
        assert all(s.parent_id == grow.span_id for s in chunk_spans)

    def test_resume_counts_resumed_chunks(self, tmp_path, obs):
        tracer, registry = obs
        grow_to_store(
            make_generator("plrg", gamma=2.2),
            300,
            tmp_path / "r.db",
            seed=3,
            checkpoint_every=100,
        )
        # Drop the completion stamp so the next call walks the chunks
        # again and finds all of them committed.
        from repro.store.sqlite import SQLiteGraphStore

        with SQLiteGraphStore(tmp_path / "r.db") as db:
            db.set_meta("complete", False)
            db.commit()
        registry.clear()
        report = grow_to_store(
            make_generator("plrg", gamma=2.2),
            300,
            tmp_path / "r.db",
            seed=3,
            checkpoint_every=100,
        )
        assert report.chunks_resumed == 3 and report.chunks_written == 0
        counters = registry.snapshot()["counters"]
        assert counters["store.chunks.resumed"] == 3
        assert counters.get("store.chunks.written", 0) == 0
        assert not any(s.name == "store.chunk" for s in tracer.spans[-3:])
