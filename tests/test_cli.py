"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, coerce_value, main


class TestCoerce:
    def test_int(self):
        assert coerce_value("42") == 42

    def test_float(self):
        assert coerce_value("0.5") == 0.5

    def test_bool(self):
        assert coerce_value("true") is True
        assert coerce_value("False") is False

    def test_string_fallback(self):
        assert coerce_value("hello") == "hello"


class TestCommands:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "glp" in out
        assert "serrano" in out

    def test_generate_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        code = main(
            ["generate", "barabasi-albert", "-n", "100", "-s", "1",
             "-o", str(out_file), "--param", "m=2"]
        )
        assert code == 0
        assert out_file.exists()
        assert "100 nodes" in capsys.readouterr().out

    def test_generate_then_summarize(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        main(["generate", "glp", "-n", "150", "-s", "2", "-o", str(out_file)])
        capsys.readouterr()
        assert main(["summarize", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "average_degree" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "barabasi-albert", "-n", "400", "-s", "3"]) == 0
        out = capsys.readouterr().out
        assert "score=" in out

    def test_bad_param_format(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "glp", "-n", "100", "-o", str(tmp_path / "x"),
                  "--param", "badformat"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_param_coercion_end_to_end(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        code = main(
            ["generate", "erdos-renyi-gnp", "-n", "50", "-s", "4",
             "-o", str(out_file), "--param", "p=0.1"]
        )
        assert code == 0

    def test_experiment_subcommand(self, capsys):
        code = main(["experiment", "f1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== F1" in out
        assert "fitted monthly growth rates" in out

    def test_experiment_with_params(self, capsys):
        code = main(["experiment", "a2", "--param", "n=200"])
        assert code == 0
        assert "== A2" in capsys.readouterr().out

    def test_experiment_unknown_id(self):
        with pytest.raises(SystemExit, match="F1"):
            main(["experiment", "zz"])

    def test_unknown_generator_model_exits_listing_models(self, tmp_path):
        # A typo'd model name is a clean usage error naming the registry,
        # not a raw KeyError traceback.
        with pytest.raises(SystemExit, match="glp") as excinfo:
            main(["generate", "no-such-model", "-n", "10",
                  "-o", str(tmp_path / "x.txt")])
        assert "no-such-model" in str(excinfo.value)


class TestBatteryCommand:
    def test_battery_smoke(self, capsys):
        code = main(["battery", "barabasi-albert", "-n", "300", "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "battery vs reference map" in out
        assert "barabasi-albert" in out
        assert "battery telemetry" in out
        assert "failed units" not in out  # clean run: no failure table

    def test_battery_with_cache_and_journal(self, tmp_path, capsys):
        args = ["battery", "barabasi-albert", "-n", "300", "--seeds", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--journal", str(tmp_path / "run.jsonl")]
        assert main(args) == 0
        capsys.readouterr()
        assert (tmp_path / "run.jsonl").exists()
        # Warm re-run: every cell served from the cache.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "misses=0" in out

    def test_battery_typod_model_exits_cleanly(self):
        with pytest.raises(SystemExit, match="available models") as excinfo:
            main(["battery", "glqp", "-n", "300"])
        message = str(excinfo.value)
        assert "glqp" in message
        assert "glp" in message
        assert "serrano" in message

    def test_battery_rejects_bad_retries(self, capsys):
        with pytest.raises(ValueError):
            main(["battery", "barabasi-albert", "-n", "300",
                  "--seeds", "1", "--retries", "-2"])


class TestObservabilityFlags:
    def test_battery_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        code = main(["battery", "barabasi-albert", "-n", "300", "--seeds", "1",
                     "--trace", str(trace), "--metrics-out", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "spans" in out
        # The exported file is a valid Chrome trace with a nesting tree.
        from repro.obs import validate_chrome_trace

        counts = validate_chrome_trace(trace)
        assert counts["spans"] > 0
        assert counts["nested"] == counts["spans"] - 1
        text = metrics.read_text()
        assert "battery_units_completed 1" in text

    def test_battery_profile_dir_prints_hotspots(self, tmp_path, capsys):
        profile_dir = tmp_path / "profiles"
        code = main(["battery", "barabasi-albert", "-n", "300", "--seeds", "1",
                     "--profile-dir", str(profile_dir)])
        assert code == 0
        assert "profile hotspots" in capsys.readouterr().out
        assert list(profile_dir.glob("*.pstats"))


class TestJournalCommand:
    @pytest.fixture
    def artifacts(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        trace = tmp_path / "trace.json"
        main(["battery", "barabasi-albert", "-n", "300", "--seeds", "1",
              "--journal", str(journal), "--trace", str(trace)])
        capsys.readouterr()
        return journal, trace

    def test_summarize_reports_the_run(self, artifacts, capsys):
        journal, _ = artifacts
        assert main(["journal", "summarize", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "overview" in out
        assert "per-model wall time" in out
        assert "barabasi-albert" in out
        assert "per-group seconds" in out

    def test_summarize_unknown_run_exits_naming_known_ids(self, artifacts):
        journal, _ = artifacts
        with pytest.raises(SystemExit, match="runs present"):
            main(["journal", "summarize", str(journal), "--run", "nope"])

    def test_tail_prints_last_events(self, artifacts, capsys):
        journal, _ = artifacts
        assert main(["journal", "tail", str(journal), "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "battery_end" in lines[-1]

    def test_spans_aggregates_a_trace(self, artifacts, capsys):
        _, trace = artifacts
        # --top wide enough that the battery span always makes the cut:
        # with the CSR backend the metric spans are small, so `battery`
        # no longer ranks in the top 3 by share.
        assert main(["journal", "spans", str(trace), "--top", "8"]) == 0
        out = capsys.readouterr().out
        assert "span aggregate" in out
        assert "battery" in out

    def test_spans_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"nope": []}')
        with pytest.raises(SystemExit, match="traceEvents"):
            main(["journal", "spans", str(bogus)])


class TestStoreCommand:
    def test_save_grow_info_measure_load(self, tmp_path, capsys):
        store = str(tmp_path / "w.db")
        assert main([
            "store", "save", store, "--model", "plrg", "-n", "300",
            "-s", "5", "--param", "gamma=2.2", "--checkpoint-every", "100",
        ]) == 0
        assert "grew 300 nodes" in capsys.readouterr().out

        assert main(["store", "info", store]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "fresh" in out

        assert main(["store", "measure", store]) == 0
        assert "giant_fraction" in capsys.readouterr().out

        exported = str(tmp_path / "out.txt")
        assert main(["store", "load", store, "-o", exported]) == 0
        assert "wrote 300 nodes" in capsys.readouterr().out

    def test_save_reuses_complete_store(self, tmp_path, capsys):
        store = str(tmp_path / "w.db")
        argv = ["store", "save", store, "--model", "plrg", "-n", "200", "-s", "1"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "reused 200 nodes" in capsys.readouterr().out

    def test_save_from_edge_list(self, tmp_path, capsys):
        edges = tmp_path / "g.txt"
        edges.write_text("# node 9\n1 2\n2 3 2.5\n", encoding="utf-8")
        assert main(["store", "save", str(tmp_path / "e.db"), "--input", str(edges)]) == 0
        assert "saved 4 nodes / 2 edges" in capsys.readouterr().out

    def test_info_on_missing_store_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "info", str(tmp_path / "nope.db")])
        assert "no graph store" in str(excinfo.value)

    def test_save_needs_model_or_input(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "save", str(tmp_path / "w.db")])
        assert "--model or --input" in str(excinfo.value)

    def test_save_model_needs_nodes(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "save", str(tmp_path / "w.db"), "--model", "plrg"])
        assert "--nodes" in str(excinfo.value)

    def test_conflicting_identity_exits_cleanly(self, tmp_path):
        store = str(tmp_path / "w.db")
        base = ["store", "save", store, "--model", "plrg", "-n", "200"]
        assert main(base + ["-s", "1"]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(base + ["-s", "2"])
        assert "different identity" in str(excinfo.value)


class TestJournalMissingAndEmpty:
    def test_summarize_missing_journal_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["journal", "summarize", str(tmp_path / "never.jsonl")])
        assert "journal not found" in str(excinfo.value)

    def test_tail_missing_journal_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["journal", "tail", str(tmp_path / "never.jsonl")])
        assert "journal not found" in str(excinfo.value)

    def test_summarize_empty_journal_is_a_clean_no_events(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["journal", "summarize", str(empty)]) == 0
        assert "no events" in capsys.readouterr().out

    def test_tail_empty_journal_is_a_clean_no_events(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["journal", "tail", str(empty)]) == 0
        assert "no events" in capsys.readouterr().out

    def test_spans_missing_trace_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["journal", "spans", str(tmp_path / "never.json")])
        assert "repro:" in str(excinfo.value)

    def test_spans_empty_trace_is_a_clean_no_spans(self, tmp_path, capsys):
        import json as _json

        trace = tmp_path / "empty-trace.json"
        trace.write_text(_json.dumps({"traceEvents": []}))
        assert main(["journal", "spans", str(trace)]) == 0
        assert "no spans" in capsys.readouterr().out


class TestPerfCommand:
    @pytest.fixture
    def records_dir(self, tmp_path):
        from repro.obs.perf import BenchRecord, environment_fingerprint

        directory = tmp_path / "records"
        env = environment_fingerprint()
        BenchRecord(
            bench_id="generators",
            values={"median_speedup": 2.5},
            wall_seconds=4.0,
            peak_rss_kb=150_000.0,
            environment=env,
        ).write(directory)
        BenchRecord(
            bench_id="resilience",
            values={"median_speedup": 4.0},
            wall_seconds=6.0,
            peak_rss_kb=160_000.0,
            environment=env,
        ).write(directory)
        return directory

    def test_record_then_compare_round_trip(self, tmp_path, records_dir, capsys):
        baseline = tmp_path / "base.json"
        assert main([
            "perf", "record", "--records", str(records_dir),
            "-o", str(baseline), "--note", "test run",
        ]) == 0
        assert "2 benches" in capsys.readouterr().out
        assert main([
            "perf", "compare", "--records", str(records_dir),
            "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "benchmarks vs baseline" in out
        assert "acceptance floors" in out
        assert "perf: ok" in out

    def test_compare_flags_injected_regression(self, tmp_path, records_dir, capsys):
        from repro.obs.perf import load_records

        baseline = tmp_path / "base.json"
        main(["perf", "record", "--records", str(records_dir), "-o", str(baseline)])
        capsys.readouterr()
        # Inject a 5x / +16s wall regression into one record.
        slow = load_records(records_dir)["generators"]
        slow.wall_seconds = 20.0
        slow.write(records_dir)
        assert main([
            "perf", "compare", "--records", str(records_dir),
            "--baseline", str(baseline),
        ]) == 1
        assert "REGRESSION generators" in capsys.readouterr().out

    def test_compare_flags_floor_violation(self, tmp_path, records_dir, capsys):
        from repro.obs.perf import load_records

        baseline = tmp_path / "base.json"
        main(["perf", "record", "--records", str(records_dir), "-o", str(baseline)])
        capsys.readouterr()
        weak = load_records(records_dir)["generators"]
        weak.values["median_speedup"] = 1.1
        weak.write(records_dir)
        assert main([
            "perf", "compare", "--records", str(records_dir),
            "--baseline", str(baseline),
        ]) == 1
        out = capsys.readouterr().out
        assert "FLOOR VIOLATION" in out
        assert "generators-median-speedup" in out

    def test_compare_without_floors(self, tmp_path, records_dir, capsys):
        baseline = tmp_path / "base.json"
        main(["perf", "record", "--records", str(records_dir), "-o", str(baseline)])
        capsys.readouterr()
        assert main([
            "perf", "compare", "--records", str(records_dir),
            "--baseline", str(baseline), "--floors", "",
        ]) == 0
        assert "acceptance floors" not in capsys.readouterr().out

    def test_report_prints_value_trajectory(self, tmp_path, records_dir, capsys):
        assert main([
            "perf", "report", "--records", str(records_dir),
            "--baseline", str(tmp_path / "absent.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "generators.median_speedup" in out
        assert "published bench values" in out

    def test_record_with_no_records_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["perf", "record", "--records", str(tmp_path / "empty")])
        assert "no BENCH_" in str(excinfo.value)

    def test_compare_with_no_records_is_clean(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([
            "perf", "compare", "--records", str(empty),
            "--baseline", str(tmp_path / "absent.json"),
        ]) == 0
        assert "no BENCH_" in capsys.readouterr().out

    def test_compare_missing_baseline_exits_cleanly(self, records_dir, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "perf", "compare", "--records", str(records_dir),
                "--baseline", str(tmp_path / "absent.json"),
            ])
        assert "repro:" in str(excinfo.value)

    def test_report_with_no_records_is_clean(self, tmp_path, capsys):
        """A fresh checkout has no BENCH records; `perf report` must say
        so helpfully and exit 0, never stack-trace (PR 10 satellite)."""
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([
            "perf", "report", "--records", str(empty),
            "--baseline", str(tmp_path / "absent.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "nothing to report" in out
        assert "no BENCH_" in out
        assert "pytest benchmarks/" in out  # tells the user what to run

    def test_report_zero_records_names_the_directory(self, tmp_path, capsys):
        empty = tmp_path / "elsewhere"
        empty.mkdir()
        main([
            "perf", "report", "--records", str(empty),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert str(empty) in capsys.readouterr().out


class TestServeCommand:
    def test_bench_in_process_smoke(self, tmp_path, capsys):
        # No --prime and a single (model, seed) key: the first requests
        # hit the slow cold path together, so identical requests are
        # reliably in flight at once and --require-coalesce is
        # deterministic (primed requests finish in ~3 ms and can race
        # past each other).
        assert main([
            "serve", "bench", "--jobs", "1", "--requests", "4",
            "--threads", "4", "--models", "albert-barabasi", "-n", "150",
            "--seeds", "1", "--duplicate-rounds", "1",
            "--root", str(tmp_path / "root"), "--require-coalesce",
        ]) == 0
        out = capsys.readouterr().out
        assert "serve load" in out
        assert "p99 ms" in out
        assert "coalesce_hits" in out

    def test_call_against_dead_server_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "call", "health", "--url", "http://127.0.0.1:9"])
        assert "repro:" in str(excinfo.value)

    def test_call_summarize_requires_model(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "call", "summarize", "--url", "http://127.0.0.1:9"])
        assert "--model is required" in str(excinfo.value)

    def test_call_round_trip(self, tmp_path, capsys):
        from repro.serve import ServeDispatcher, running_server

        dispatcher = ServeDispatcher(jobs=1, root=tmp_path / "root")
        try:
            with running_server(dispatcher) as url:
                assert main([
                    "serve", "call", "summarize", "--url", url,
                    "--model", "albert-barabasi", "-n", "150", "-s", "1",
                    "--groups", "size",
                ]) == 0
                out = capsys.readouterr().out
                assert '"num_nodes": 150' in out
                assert main(["serve", "call", "health", "--url", url]) == 0
                assert '"status": "ok"' in capsys.readouterr().out
        finally:
            dispatcher.shutdown()
