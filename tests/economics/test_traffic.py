"""Tests for gravity traffic and flow routing."""

import pytest

from repro.economics import (
    Flow,
    RelationshipMap,
    TrafficMatrix,
    assign_relationships,
    gravity_flows,
    route_flows,
)
from repro.graph import Graph


@pytest.fixture
def line_economy():
    """stub1 - provider - stub2 with c2p edges up to the provider."""
    g = Graph()
    rels = RelationshipMap()
    g.add_edge("s1", "prov")
    rels.add_customer_provider("s1", "prov")
    g.add_edge("s2", "prov")
    rels.add_customer_provider("s2", "prov")
    return g, rels


class TestGravityFlows:
    def test_count_and_volume(self):
        matrix = gravity_flows({"a": 1, "b": 1, "c": 1}, num_flows=50, total_volume=500, seed=1)
        assert len(matrix) == 50
        assert matrix.total_volume == pytest.approx(500)

    def test_no_self_flows(self):
        matrix = gravity_flows({"a": 5, "b": 5}, num_flows=40, seed=2)
        assert all(f.source != f.destination for f in matrix.flows)

    def test_population_bias(self):
        pops = {"big": 1000, "tiny": 1, "other": 1000}
        matrix = gravity_flows(pops, num_flows=400, seed=3)
        touching_tiny = sum(
            1 for f in matrix.flows if "tiny" in (f.source, f.destination)
        )
        assert touching_tiny < 40

    def test_zero_population_excluded(self):
        matrix = gravity_flows({"a": 1, "b": 1, "z": 0}, num_flows=100, seed=4)
        assert all("z" not in (f.source, f.destination) for f in matrix.flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            gravity_flows({"a": 1, "b": 1}, num_flows=0)
        with pytest.raises(ValueError):
            gravity_flows({"a": 1, "b": 1}, num_flows=5, total_volume=0)
        with pytest.raises(ValueError):
            gravity_flows({"a": 1}, num_flows=5)

    def test_by_destination_groups(self):
        matrix = TrafficMatrix(
            flows=[Flow("a", "b", 1.0), Flow("c", "b", 1.0), Flow("a", "c", 2.0)]
        )
        groups = matrix.by_destination()
        assert len(groups["b"]) == 2
        assert len(groups["c"]) == 1

    def test_reproducible(self):
        a = gravity_flows({"a": 3, "b": 2, "c": 1}, num_flows=30, seed=7)
        b = gravity_flows({"a": 3, "b": 2, "c": 1}, num_flows=30, seed=7)
        assert a.flows == b.flows


class TestRouteFlows:
    def test_transit_counted_at_middle(self, line_economy):
        g, rels = line_economy
        matrix = TrafficMatrix(flows=[Flow("s1", "s2", 10.0)])
        report = route_flows(g, rels, matrix)
        assert report.transit["prov"] == 10.0
        assert report.transit["s1"] == 0.0
        assert report.originated["s1"] == 10.0
        assert report.terminated["s2"] == 10.0

    def test_edge_volumes(self, line_economy):
        g, rels = line_economy
        matrix = TrafficMatrix(flows=[Flow("s1", "s2", 10.0), Flow("s2", "s1", 5.0)])
        report = route_flows(g, rels, matrix)
        assert report.volume_on_edge("s1", "prov") == 15.0
        assert report.volume_on_edge("prov", "s2") == 15.0

    def test_carried_includes_endpoints(self, line_economy):
        g, rels = line_economy
        matrix = TrafficMatrix(flows=[Flow("s1", "s2", 10.0)])
        report = route_flows(g, rels, matrix)
        assert report.carried["s1"] == 10.0
        assert report.carried["prov"] == 10.0

    def test_unroutable_accumulates(self):
        g = Graph()
        rels = RelationshipMap()
        g.add_edge("a", "b")
        rels.add_peering("a", "b")
        g.add_edge("c", "d")
        rels.add_peering("c", "d")
        matrix = TrafficMatrix(flows=[Flow("a", "c", 7.0)])
        report = route_flows(g, rels, matrix)
        assert report.unroutable == 7.0
        assert report.volume_on_edge("a", "b") == 0.0

    def test_volume_conservation_on_model(self):
        from repro.generators import GlpGenerator
        from repro.graph import giant_component

        g = giant_component(GlpGenerator().generate(120, seed=5))
        rels = assign_relationships(g)
        pops = {n: 1 for n in g.nodes()}
        matrix = gravity_flows(pops, num_flows=200, total_volume=2000, seed=6)
        report = route_flows(g, rels, matrix)
        routed = sum(report.originated.values())
        assert routed + report.unroutable == pytest.approx(2000)
        assert sum(report.terminated.values()) == pytest.approx(routed)
