"""Tests for valley-free routing."""

import pytest

from repro.economics import (
    CUSTOMER_ROUTE,
    PEER_ROUTE,
    PROVIDER_ROUTE,
    RelationshipMap,
    assign_relationships,
    routing_table,
    valley_free_path,
)
from repro.graph import Graph


@pytest.fixture
def small_hierarchy():
    """top1 -peer- top2; mid buys from top1; leafA from mid; leafB from top2."""
    g = Graph()
    rels = RelationshipMap()
    g.add_edge("top1", "top2")
    rels.add_peering("top1", "top2")
    g.add_edge("mid", "top1")
    rels.add_customer_provider("mid", "top1")
    g.add_edge("leafA", "mid")
    rels.add_customer_provider("leafA", "mid")
    g.add_edge("leafB", "top2")
    rels.add_customer_provider("leafB", "top2")
    return g, rels


class TestRoutingTable:
    def test_customer_route_preferred(self, small_hierarchy):
        g, rels = small_hierarchy
        table = routing_table(g, rels, "leafA")
        # top1 reaches leafA through its customer chain.
        assert table.kind["top1"] == CUSTOMER_ROUTE
        assert table.next_hop["top1"] == "mid"

    def test_peer_route_single_hop(self, small_hierarchy):
        g, rels = small_hierarchy
        table = routing_table(g, rels, "leafA")
        # top2 learns leafA via its peer top1.
        assert table.kind["top2"] == PEER_ROUTE
        assert table.next_hop["top2"] == "top1"

    def test_provider_route_descends(self, small_hierarchy):
        g, rels = small_hierarchy
        table = routing_table(g, rels, "leafA")
        # leafB must go up to top2 (its provider).
        assert table.kind["leafB"] == PROVIDER_ROUTE
        assert table.next_hop["leafB"] == "top2"

    def test_full_path_valley_free(self, small_hierarchy):
        g, rels = small_hierarchy
        path = valley_free_path(g, rels, "leafB", "leafA")
        assert path == ["leafB", "top2", "top1", "mid", "leafA"]

    def test_path_to_self(self, small_hierarchy):
        g, rels = small_hierarchy
        table = routing_table(g, rels, "leafA")
        assert table.path_from("leafA") == ["leafA"]

    def test_hops_consistent_with_paths(self, small_hierarchy):
        g, rels = small_hierarchy
        table = routing_table(g, rels, "leafA")
        for node in ("top1", "top2", "mid", "leafB"):
            path = table.path_from(node)
            assert len(path) - 1 == table.hops[node]

    def test_missing_destination_raises(self, small_hierarchy):
        g, rels = small_hierarchy
        with pytest.raises(KeyError):
            routing_table(g, rels, "ghost")

    def test_unroutable_returns_none(self):
        # Two peer pairs with no transit between them: a-b, c-d.
        g = Graph()
        rels = RelationshipMap()
        g.add_edge("a", "b")
        rels.add_peering("a", "b")
        g.add_edge("c", "d")
        rels.add_peering("c", "d")
        table = routing_table(g, rels, "a")
        assert table.path_from("c") is None


class TestValleyFreeProperty:
    def _is_valley_free(self, path, rels):
        # Encode each hop: 0=up(c2p), 1=peer, 2=down(p2c); must be sorted
        # and contain at most one peer hop.
        from repro.economics import Relationship

        codes = []
        for u, v in zip(path, path[1:]):
            rel = rels.relationship(u, v)
            if rel is Relationship.CUSTOMER_TO_PROVIDER:
                codes.append(0)
            elif rel is Relationship.PEER_TO_PEER:
                codes.append(1)
            else:
                codes.append(2)
        if codes.count(1) > 1:
            return False
        return codes == sorted(codes)

    def test_all_routes_valley_free_on_model_topology(self):
        from repro.generators import GlpGenerator
        from repro.graph import giant_component

        g = giant_component(GlpGenerator().generate(150, seed=2))
        rels = assign_relationships(g)
        nodes = sorted(g.nodes(), key=str)[:10]
        for destination in nodes:
            table = routing_table(g, rels, destination)
            for source in nodes:
                path = table.path_from(source)
                if path is None or len(path) < 2:
                    continue
                assert self._is_valley_free(path, rels), (source, destination, path)

    def test_no_loops_in_paths(self):
        from repro.generators import PfpGenerator
        from repro.graph import giant_component

        g = giant_component(PfpGenerator().generate(150, seed=3))
        rels = assign_relationships(g)
        destination = next(iter(sorted(g.nodes(), key=str)))
        table = routing_table(g, rels, destination)
        for source in list(g.nodes())[:50]:
            path = table.path_from(source)
            if path:
                assert len(path) == len(set(path))

    def test_paths_no_longer_than_necessary(self, small_hierarchy):
        g, rels = small_hierarchy
        table = routing_table(g, rels, "leafA")
        # mid is a direct provider chain: 1 hop.
        assert table.hops["mid"] == 1
