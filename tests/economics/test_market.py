"""Tests for market settlement."""

import pytest

from repro.economics import (
    Flow,
    PricingModel,
    RelationshipMap,
    TrafficMatrix,
    assign_relationships,
    gravity_flows,
    herfindahl_index,
    route_flows,
    settle_market,
)
from repro.graph import Graph


@pytest.fixture
def settled_line():
    """Two stubs under one provider, one 10-unit flow between the stubs."""
    g = Graph()
    rels = RelationshipMap()
    g.add_edge("s1", "prov")
    rels.add_customer_provider("s1", "prov")
    g.add_edge("s2", "prov")
    rels.add_customer_provider("s2", "prov")
    matrix = TrafficMatrix(flows=[Flow("s1", "s2", 10.0)])
    traffic = route_flows(g, rels, matrix)
    return g, rels, traffic


class TestPricing:
    def test_defaults_valid(self):
        PricingModel()

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PricingModel(transit_price=-1.0)
        with pytest.raises(ValueError):
            PricingModel(peering_cost=-1.0)


class TestSettlement:
    def test_provider_earns_transit(self, settled_line):
        g, rels, traffic = settled_line
        pricing = PricingModel(
            transit_price=1.0, retail_price=0.0, peering_cost=0.0,
            carriage_cost=0.0, link_cost=0.0,
        )
        report = settle_market(g, rels, traffic, pricing=pricing)
        # 10 units cross each of the two c2p links: provider bills both.
        assert report.books["prov"].transit_revenue == 20.0
        assert report.books["prov"].transit_cost == 0.0
        assert report.books["s1"].transit_cost == 10.0
        assert report.books["s2"].transit_cost == 10.0

    def test_money_conservation(self, settled_line):
        g, rels, traffic = settled_line
        pricing = PricingModel(
            transit_price=1.0, retail_price=0.0, peering_cost=0.0,
            carriage_cost=0.0, link_cost=0.0,
        )
        report = settle_market(g, rels, traffic, pricing=pricing)
        total_transit_revenue = sum(b.transit_revenue for b in report.books.values())
        total_transit_cost = sum(b.transit_cost for b in report.books.values())
        assert total_transit_revenue == pytest.approx(total_transit_cost)

    def test_retail_revenue_from_users(self, settled_line):
        g, rels, traffic = settled_line
        pricing = PricingModel(retail_price=3.0)
        report = settle_market(
            g, rels, traffic, users={"s1": 100, "s2": 0, "prov": 0}, pricing=pricing
        )
        assert report.books["s1"].retail_revenue == 300.0

    def test_default_users_one(self, settled_line):
        g, rels, traffic = settled_line
        report = settle_market(g, rels, traffic)
        assert all(b.users == 1.0 for b in report.books.values())

    def test_peering_costs_both_sides(self):
        g = Graph()
        rels = RelationshipMap()
        g.add_edge("a", "b")
        rels.add_peering("a", "b")
        traffic = route_flows(g, rels, TrafficMatrix(flows=[]))
        pricing = PricingModel(peering_cost=25.0, link_cost=0.0, retail_price=0.0)
        report = settle_market(g, rels, traffic, pricing=pricing)
        assert report.books["a"].peering_cost == 25.0
        assert report.books["b"].peering_cost == 25.0

    def test_profit_identity(self, settled_line):
        g, rels, traffic = settled_line
        report = settle_market(g, rels, traffic)
        for books in report.books.values():
            assert books.profit == pytest.approx(books.revenue - books.cost)

    def test_tier_summary_rows(self, settled_line):
        g, rels, traffic = settled_line
        report = settle_market(g, rels, traffic)
        rows = report.tier_summary()
        tiers = [row[0] for row in rows]
        assert tiers == sorted(tiers)
        assert sum(row[1] for row in rows) == 3

    def test_profitable_fraction_bounds(self, settled_line):
        g, rels, traffic = settled_line
        report = settle_market(g, rels, traffic)
        assert 0.0 <= report.profitable_fraction() <= 1.0
        assert report.profitable_fraction(tier=99) == 0.0


class TestHhi:
    def test_monopoly(self):
        assert herfindahl_index([10, 0, 0]) == 1.0

    def test_uniform(self):
        assert herfindahl_index([1, 1, 1, 1]) == pytest.approx(0.25)

    def test_zero_total(self):
        assert herfindahl_index([0, 0]) == 0.0


class TestEndToEndEconomy:
    def test_tier1_outearns_stubs_on_model(self):
        from repro.generators import PfpGenerator
        from repro.graph import giant_component

        g = giant_component(PfpGenerator().generate(300, seed=1))
        rels = assign_relationships(g)
        pops = {n: 1 + g.degree(n) for n in g.nodes()}
        matrix = gravity_flows(pops, num_flows=800, seed=2)
        traffic = route_flows(g, rels, matrix)
        report = settle_market(g, rels, traffic, users=pops)
        by_tier = report.by_tier()
        tier1_mean = sum(b.transit_revenue for b in by_tier[1]) / len(by_tier[1])
        deepest = max(by_tier)
        stub_mean = sum(b.transit_revenue for b in by_tier[deepest]) / len(by_tier[deepest])
        assert tier1_mean > stub_mean
