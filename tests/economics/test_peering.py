"""Tests for customer cones and peering strategy."""

import pytest

from repro.economics import (
    PricingModel,
    RelationshipMap,
    TrafficMatrix,
    assign_relationships,
    evaluate_peering,
    gravity_flows,
    suggest_peerings,
)
from repro.economics.traffic import Flow
from repro.graph import Graph, giant_component


@pytest.fixture
def two_trees():
    """Two provider trees (pA over a1, a2) and (pB over b1, b2) joined at
    the top through a shared tier-1 t."""
    g = Graph()
    rels = RelationshipMap()
    for provider, customers in (("pA", ["a1", "a2"]), ("pB", ["b1", "b2"])):
        for customer in customers:
            g.add_edge(customer, provider)
            rels.add_customer_provider(customer, provider)
        g.add_edge(provider, "t")
        rels.add_customer_provider(provider, "t")
    return g, rels


class TestCustomerCone:
    def test_stub_cone_is_self(self, two_trees):
        _, rels = two_trees
        assert rels.customer_cone("a1") == {"a1"}

    def test_provider_cone(self, two_trees):
        _, rels = two_trees
        assert rels.customer_cone("pA") == {"pA", "a1", "a2"}

    def test_tier1_cone_everything(self, two_trees):
        g, rels = two_trees
        assert rels.customer_cone("t") == set(g.nodes())

    def test_cone_sizes(self, two_trees):
        _, rels = two_trees
        sizes = rels.cone_sizes()
        assert sizes["t"] == 7
        assert sizes["pA"] == 3
        assert sizes["a1"] == 1

    def test_cone_handles_cycles(self):
        # Defensive: mutual providers must not loop forever.
        rels = RelationshipMap()
        rels.add_customer_provider("a", "b")
        rels.add_customer_provider("b", "a")
        assert rels.customer_cone("a") == {"a", "b"}


class TestEvaluatePeering:
    def test_offload_volume_counted(self, two_trees):
        g, rels = two_trees
        matrix = TrafficMatrix(
            flows=[Flow("a1", "b1", 100.0), Flow("b2", "a2", 50.0),
                   Flow("a1", "a2", 999.0)]  # intra-cone: not offloadable
        )
        pricing = PricingModel(transit_price=1.0, peering_cost=10.0)
        assessment = evaluate_peering(rels, matrix, "pA", "pB", pricing=pricing)
        assert assessment.offload_volume == 150.0
        assert assessment.monthly_saving_a == pytest.approx(140.0)
        assert assessment.mutually_beneficial

    def test_small_volume_not_worth_port(self, two_trees):
        g, rels = two_trees
        matrix = TrafficMatrix(flows=[Flow("a1", "b1", 1.0)])
        pricing = PricingModel(transit_price=1.0, peering_cost=50.0)
        assessment = evaluate_peering(rels, matrix, "pA", "pB", pricing=pricing)
        assert not assessment.mutually_beneficial

    def test_overlapping_cones_offload_nothing(self, two_trees):
        g, rels = two_trees
        matrix = TrafficMatrix(flows=[Flow("a1", "pA", 100.0)])
        assessment = evaluate_peering(rels, matrix, "t", "pA")
        assert assessment.offload_volume == 0.0

    def test_tier1_has_nothing_to_save(self, two_trees):
        g, rels = two_trees
        # Isolated second tier-1 with its own customer.
        g.add_edge("u1", "t2")
        rels.add_customer_provider("u1", "t2")
        matrix = TrafficMatrix(flows=[Flow("a1", "u1", 500.0)])
        pricing = PricingModel(transit_price=1.0, peering_cost=10.0)
        assessment = evaluate_peering(rels, matrix, "t", "t2", pricing=pricing)
        # Both are providerless: no transit bill to avoid, only port cost.
        assert assessment.monthly_saving_a == pytest.approx(-10.0)
        assert not assessment.mutually_beneficial


class TestSuggestPeerings:
    def test_suggestions_on_model_topology(self):
        from repro.generators import GlpGenerator

        g = giant_component(GlpGenerator().generate(300, seed=4))
        rels = assign_relationships(g)
        pops = {n: 1.0 + g.degree(n) for n in g.nodes()}
        matrix = gravity_flows(pops, num_flows=2000, seed=5)
        pricing = PricingModel(transit_price=1.0, peering_cost=1.0)
        suggestions = suggest_peerings(g, rels, matrix, pricing=pricing)
        for s in suggestions:
            assert s.mutually_beneficial
            assert not g.has_edge(s.a, s.b)
        # Sorted by combined savings, best first.
        totals = [s.monthly_saving_a + s.monthly_saving_b for s in suggestions]
        assert totals == sorted(totals, reverse=True)

    def test_validation(self, two_trees):
        g, rels = two_trees
        matrix = TrafficMatrix(flows=[])
        with pytest.raises(ValueError):
            suggest_peerings(g, rels, matrix, top_candidates=1)
