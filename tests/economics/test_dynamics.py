"""Tests for market evolution dynamics."""

import pytest

from repro.economics import MarketEvolution, simulate_market_evolution
from repro.economics.market import PricingModel
from repro.generators import GlpGenerator, SerranoGenerator
from repro.graph import giant_component


@pytest.fixture(scope="module")
def serrano_run():
    return SerranoGenerator().generate_detailed(400, seed=4)


@pytest.fixture(scope="module")
def evolution(serrano_run):
    return simulate_market_evolution(
        serrano_run.graph,
        users=serrano_run.users,
        rounds=5,
        num_flows=400,
        seed=5,
    )


class TestSimulation:
    def test_round_count(self, evolution):
        assert len(evolution.rounds) == 5

    def test_round_indices_sequential(self, evolution):
        assert [r.round_index for r in evolution.rounds] == list(range(5))

    def test_as_count_never_grows(self, evolution):
        counts = [r.num_ases for r in evolution.rounds]
        assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))

    def test_providers_consolidate(self, evolution):
        first = evolution.rounds[0].num_providers
        last = evolution.rounds[-1].num_providers
        assert last < first

    def test_exits_accumulate(self, evolution):
        assert evolution.total_exits == sum(r.exits for r in evolution.rounds)
        assert evolution.total_exits > 0

    def test_market_stays_routable(self, evolution):
        assert all(r.unroutable_fraction < 0.3 for r in evolution.rounds)

    def test_final_graph_present(self, evolution):
        assert evolution.final_graph is not None
        assert evolution.final_graph.num_nodes == evolution.rounds[-1].num_ases
        assert evolution.final_report is not None

    def test_original_graph_untouched(self, serrano_run):
        before = serrano_run.graph.num_nodes
        simulate_market_evolution(
            serrano_run.graph, users=serrano_run.users, rounds=2,
            num_flows=200, seed=6,
        )
        assert serrano_run.graph.num_nodes == before

    def test_concentration_trend_definition(self, evolution):
        expected = (
            evolution.rounds[-1].transit_hhi - evolution.rounds[0].transit_hhi
        )
        assert evolution.concentration_trend == pytest.approx(expected)


class TestParameters:
    def test_validation(self, serrano_run):
        with pytest.raises(ValueError):
            simulate_market_evolution(serrano_run.graph, rounds=0)
        with pytest.raises(ValueError):
            simulate_market_evolution(serrano_run.graph, patience=0)

    def test_default_users_degree_based(self):
        g = GlpGenerator().generate(200, seed=7)
        evo = simulate_market_evolution(g, rounds=2, num_flows=200, seed=8)
        assert len(evo.rounds) == 2

    def test_generous_pricing_no_exits(self, serrano_run):
        # With every cost channel zeroed, profit reduces to retail revenue
        # and nobody can lose money.
        pricing = PricingModel(
            transit_price=0.0, retail_price=100.0, peering_cost=0.0,
            carriage_cost=0.0, link_cost=0.0,
        )
        evo = simulate_market_evolution(
            serrano_run.graph, users=serrano_run.users, pricing=pricing,
            rounds=3, num_flows=200, seed=9,
        )
        assert evo.total_exits == 0

    def test_high_patience_delays_exits(self, serrano_run):
        impatient = simulate_market_evolution(
            serrano_run.graph, users=serrano_run.users, rounds=3,
            patience=1, num_flows=300, seed=10,
        )
        patient = simulate_market_evolution(
            serrano_run.graph, users=serrano_run.users, rounds=3,
            patience=3, num_flows=300, seed=10,
        )
        assert patient.rounds[0].exits == 0
        assert impatient.total_exits >= patient.total_exits
