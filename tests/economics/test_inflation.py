"""Tests for policy path inflation."""

import pytest

from repro.economics import (
    RelationshipMap,
    assign_relationships,
    path_inflation,
)
from repro.graph import Graph, giant_component


@pytest.fixture
def diamond():
    """Diamond where policy forbids the shortcut.

    s - a - d and s - b - d, but the s-b and b-d edges are peerings, so the
    valley-free path may be forced through the provider chain.
    """
    g = Graph()
    rels = RelationshipMap()
    # provider chain: s -> a -> d readable both ways
    g.add_edge("s", "a")
    rels.add_customer_provider("s", "a")
    g.add_edge("a", "d")
    rels.add_customer_provider("d", "a")
    # peer shortcut s - b - d (two peer hops: invalid as a through-path)
    g.add_edge("s", "b")
    rels.add_peering("s", "b")
    g.add_edge("b", "d")
    rels.add_peering("b", "d")
    return g, rels


class TestPathInflation:
    def test_no_inflation_on_pure_hierarchy(self):
        g = Graph()
        rels = RelationshipMap()
        g.add_edge("leaf", "mid")
        rels.add_customer_provider("leaf", "mid")
        g.add_edge("mid", "top")
        rels.add_customer_provider("mid", "top")
        report = path_inflation(g, rels, num_destinations=3, seed=1)
        assert report.mean_inflation == 0.0
        assert report.inflated_fraction == 0.0
        assert report.policy_unreachable == 0

    def test_double_peer_hop_detected(self, diamond):
        g, rels = diamond
        report = path_inflation(g, rels, num_destinations=4, seed=2)
        # b -> a requires either peer(s)+up or peer(d)+... valley-free
        # forbids two peer hops, so some pair must inflate or strand.
        assert report.mean_inflation > 0.0 or report.policy_unreachable > 0

    def test_policy_never_shortens(self):
        from repro.generators import GlpGenerator

        g = giant_component(GlpGenerator().generate(200, seed=3))
        rels = assign_relationships(g)
        report = path_inflation(g, rels, num_destinations=10, seed=4)
        assert all(d >= 0 for d in report.extra_hop_counts)
        assert report.mean_policy >= report.mean_shortest

    def test_distribution_normalizes(self):
        from repro.generators import PfpGenerator

        g = giant_component(PfpGenerator().generate(200, seed=5))
        rels = assign_relationships(g)
        report = path_inflation(g, rels, num_destinations=10, seed=6)
        points = report.as_points()
        assert sum(frac for _, frac in points) == pytest.approx(1.0)

    def test_fraction_properties_bounded(self):
        from repro.generators import GlpGenerator

        g = giant_component(GlpGenerator().generate(150, seed=7))
        rels = assign_relationships(g)
        report = path_inflation(g, rels, num_destinations=8, seed=8)
        assert 0.0 <= report.inflated_fraction <= 1.0
        assert 0.0 <= report.unreachable_fraction <= 1.0

    def test_validation(self, diamond):
        g, rels = diamond
        with pytest.raises(ValueError):
            path_inflation(g, rels, num_destinations=0)
        with pytest.raises(ValueError):
            path_inflation(Graph(), rels, num_destinations=1)
