"""Tests for relationship assignment."""

import pytest

from repro.economics import Relationship, RelationshipMap, assign_relationships
from repro.graph import Graph


@pytest.fixture
def hierarchy():
    """Tiny hierarchy: hub 't1' (deg 5) - mid 'm' (deg 3) - leaves."""
    g = Graph()
    g.add_edge("t1", "m")
    for i in range(4):
        g.add_edge("t1", f"x{i}")
    g.add_edge("m", "a")
    g.add_edge("m", "b")
    return g


class TestRelationshipMap:
    def test_customer_provider_roundtrip(self):
        rels = RelationshipMap()
        rels.add_customer_provider(customer="c", provider="p")
        assert rels.providers("c") == {"p"}
        assert rels.customers("p") == {"c"}
        assert rels.relationship("c", "p") is Relationship.CUSTOMER_TO_PROVIDER
        assert rels.relationship("p", "c") is Relationship.PROVIDER_TO_CUSTOMER

    def test_peering_symmetric(self):
        rels = RelationshipMap()
        rels.add_peering("a", "b")
        assert rels.relationship("a", "b") is Relationship.PEER_TO_PEER
        assert rels.relationship("b", "a") is Relationship.PEER_TO_PEER

    def test_unknown_edge_raises(self):
        rels = RelationshipMap()
        rels.add_peering("a", "b")
        with pytest.raises(KeyError):
            rels.relationship("a", "z")

    def test_stub_detection(self):
        rels = RelationshipMap()
        rels.add_customer_provider("stub", "prov")
        assert rels.is_stub("stub")
        assert not rels.is_stub("prov")

    def test_tier_one_no_providers(self):
        rels = RelationshipMap()
        rels.add_customer_provider("c", "p")
        rels.add_peering("p", "q")
        assert rels.tier_one() == {"p", "q"}

    def test_tiers_depth(self):
        rels = RelationshipMap()
        rels.add_customer_provider("mid", "top")
        rels.add_customer_provider("leaf", "mid")
        tiers = rels.tiers()
        assert tiers == {"top": 1, "mid": 2, "leaf": 3}

    def test_counts(self):
        rels = RelationshipMap()
        rels.add_customer_provider("a", "b")
        rels.add_peering("b", "c")
        assert rels.counts() == (1, 1)


class TestAssignment:
    def test_every_edge_annotated(self, hierarchy):
        rels = assign_relationships(hierarchy, top_clique_size=1)
        for u, v in hierarchy.edges():
            rels.relationship(u, v)  # must not raise

    def test_smaller_is_customer(self, hierarchy):
        rels = assign_relationships(hierarchy, top_clique_size=1, peer_degree_ratio=1.0)
        assert "t1" in rels.providers("m")
        assert "m" in rels.providers("a")

    def test_top_clique_peers(self):
        g = Graph()
        g.add_edge("h1", "h2")
        for i in range(5):
            g.add_edge("h1", f"a{i}")
            g.add_edge("h2", f"b{i}")
        rels = assign_relationships(g, top_clique_size=2)
        assert rels.relationship("h1", "h2") is Relationship.PEER_TO_PEER

    def test_similar_degrees_peer(self):
        g = Graph()
        # two deg-2 nodes side by side
        g.add_edge("a", "b")
        g.add_edge("a", "x")
        g.add_edge("b", "y")
        rels = assign_relationships(g, peer_degree_ratio=1.5, top_clique_size=1)
        assert rels.relationship("a", "b") is Relationship.PEER_TO_PEER

    def test_deterministic(self, hierarchy):
        a = assign_relationships(hierarchy)
        b = assign_relationships(hierarchy)
        assert a.counts() == b.counts()
        for u, v in hierarchy.edges():
            assert a.relationship(u, v) == b.relationship(u, v)

    def test_parameter_validation(self, hierarchy):
        with pytest.raises(ValueError):
            assign_relationships(hierarchy, peer_degree_ratio=0.5)
        with pytest.raises(ValueError):
            assign_relationships(hierarchy, top_clique_size=0)

    def test_realistic_c2p_majority(self):
        from repro.generators import GlpGenerator

        g = GlpGenerator().generate(500, seed=1)
        rels = assign_relationships(g)
        c2p, p2p = rels.counts()
        assert c2p > p2p  # most AS links are transit in the real internet
        assert c2p + p2p == g.num_edges

    def test_degree_tie_broken_by_node_order(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_edge(2, 4)
        # nodes 1 and 2 both have degree 2 -> peer under ratio 1.5
        rels = assign_relationships(g, peer_degree_ratio=1.0, top_clique_size=1)
        rel = rels.relationship(1, 2)
        assert rel in (
            Relationship.CUSTOMER_TO_PROVIDER,
            Relationship.PROVIDER_TO_CUSTOMER,
            Relationship.PEER_TO_PEER,
        )
