"""Tests for prefix hijack simulation."""

import pytest

from repro.bgpsim import simulate_hijack
from repro.economics import RelationshipMap, assign_relationships
from repro.graph import Graph, giant_component


@pytest.fixture
def hierarchy():
    """t (tier-1) over providers pA, pB; stubs sA under pA, sB under pB."""
    g = Graph()
    rels = RelationshipMap()
    for provider, stub in (("pA", "sA"), ("pB", "sB")):
        g.add_edge(stub, provider)
        rels.add_customer_provider(stub, provider)
        g.add_edge(provider, "t")
        rels.add_customer_provider(provider, "t")
    return g, rels


class TestSimulateHijack:
    def test_provider_keeps_its_customer(self, hierarchy):
        g, rels = hierarchy
        # sB hijacks sA's prefix: pA hears sA directly (customer route),
        # and only hears the forgery via t (provider route) — stays loyal.
        outcome = simulate_hijack(g, rels, victim="sA", attacker="sB")
        assert "pA" in outcome.loyal

    def test_attackers_provider_defects(self, hierarchy):
        g, rels = hierarchy
        # pB hears the forgery from its customer sB: customer beats the
        # provider route to the real sA.
        outcome = simulate_hijack(g, rels, victim="sA", attacker="sB")
        assert "pB" in outcome.captured

    def test_symmetric_contest_at_top(self, hierarchy):
        g, rels = hierarchy
        outcome = simulate_hijack(g, rels, victim="sA", attacker="sB")
        # t hears both via customer chains of equal length: the tie-break
        # decides, but t must be in exactly one camp.
        assert ("t" in outcome.captured) != ("t" in outcome.loyal)

    def test_origins_excluded_from_sets(self, hierarchy):
        g, rels = hierarchy
        outcome = simulate_hijack(g, rels, victim="sA", attacker="sB")
        for origin in ("sA", "sB"):
            assert origin not in outcome.captured
            assert origin not in outcome.loyal
            assert origin not in outcome.blackholed

    def test_partition_complete(self, hierarchy):
        g, rels = hierarchy
        outcome = simulate_hijack(g, rels, victim="sA", attacker="sB")
        union = outcome.captured | outcome.loyal | outcome.blackholed
        assert union == set(g.nodes()) - {"sA", "sB"}

    def test_same_node_rejected(self, hierarchy):
        g, rels = hierarchy
        with pytest.raises(ValueError):
            simulate_hijack(g, rels, victim="sA", attacker="sA")

    def test_capture_fraction_bounds(self, hierarchy):
        g, rels = hierarchy
        outcome = simulate_hijack(g, rels, victim="sA", attacker="sB")
        assert 0.0 <= outcome.capture_fraction <= 1.0

    def test_attacker_ancestors_always_defect(self):
        # The hard invariant: an AS with the attacker in its customer cone
        # (an "ancestor" selling the attacker transit) hears the forgery as
        # a customer route — the best class — and must defect, unless the
        # victim is in its cone too.
        from repro.generators import GlpGenerator

        g = giant_component(GlpGenerator().generate(300, seed=5))
        rels = assign_relationships(g)
        cones = rels.cone_sizes()
        ranked = sorted(cones, key=lambda node: (-cones[node], str(node)))
        victim = ranked[len(ranked) // 2]
        attacker = ranked[-1]  # a stub: plenty of ancestors above it
        if attacker == victim:
            attacker = ranked[-2]
        outcome = simulate_hijack(g, rels, victim=victim, attacker=attacker)
        ancestors = {
            node
            for node in g.nodes()
            if node not in (victim, attacker)
            and attacker in rels.customer_cone(node)
            and victim not in rels.customer_cone(node)
        }
        assert ancestors, "test topology should give the stub ancestors"
        assert ancestors <= outcome.captured

    def test_victim_cone_mostly_loyal_on_model(self):
        # Soft shape: the victim's cone stays overwhelmingly loyal — only a
        # peer shortcut to the attacker can flip a cone member.
        from repro.generators import GlpGenerator

        g = giant_component(GlpGenerator().generate(300, seed=5))
        rels = assign_relationships(g)
        cones = rels.cone_sizes()
        victim = max(cones, key=lambda node: (cones[node], str(node)))
        stub = min(cones, key=lambda node: (cones[node], str(node)))
        if stub == victim:
            pytest.skip("degenerate topology")
        outcome = simulate_hijack(g, rels, victim=victim, attacker=stub)
        cone = rels.customer_cone(victim) - {victim, stub}
        loyal_fraction = len(cone & outcome.loyal) / len(cone)
        assert loyal_fraction > 0.9

    def test_tier1_attacker_beats_stub_attacker(self):
        from repro.generators import PfpGenerator

        g = giant_component(PfpGenerator().generate(300, seed=6))
        rels = assign_relationships(g)
        cones = rels.cone_sizes()
        ranked = sorted(cones, key=lambda node: (-cones[node], str(node)))
        victim = ranked[len(ranked) // 2]
        big, small = ranked[0], ranked[-1]
        if victim in (big, small):
            pytest.skip("degenerate topology")
        big_capture = simulate_hijack(g, rels, victim, big).capture_fraction
        small_capture = simulate_hijack(g, rels, victim, small).capture_fraction
        assert big_capture > small_capture
