"""Tests for the BGP path-vector simulator."""

import pytest

from repro.bgpsim import (
    CUSTOMER,
    ORIGIN,
    PEER,
    PROVIDER,
    BgpSimulation,
    Route,
    prefer,
    route_class,
)
from repro.economics import RelationshipMap, assign_relationships, routing_table
from repro.graph import Graph, giant_component


@pytest.fixture
def small_hierarchy():
    g = Graph()
    rels = RelationshipMap()
    g.add_edge("top1", "top2")
    rels.add_peering("top1", "top2")
    g.add_edge("mid", "top1")
    rels.add_customer_provider("mid", "top1")
    g.add_edge("leafA", "mid")
    rels.add_customer_provider("leafA", "mid")
    g.add_edge("leafB", "top2")
    rels.add_customer_provider("leafB", "top2")
    return g, rels


class TestRoutePrimitives:
    def test_prefer_class_over_length(self):
        short_provider = Route("d", ("x", "p", "d"), "p", PROVIDER)
        long_customer = Route("d", ("x", "c", "y", "d"), "c", CUSTOMER)
        assert prefer(short_provider, long_customer) is long_customer

    def test_prefer_shorter_within_class(self):
        short = Route("d", ("x", "a", "d"), "a", PEER)
        longer = Route("d", ("x", "b", "y", "d"), "b", PEER)
        assert prefer(short, longer) is short

    def test_prefer_tiebreak_deterministic(self):
        a = Route("d", ("x", "a", "d"), "a", PEER)
        b = Route("d", ("x", "b", "d"), "b", PEER)
        assert prefer(a, b) is a  # "a" < "b"

    def test_prefer_cross_destination_rejected(self):
        a = Route("d1", ("x", "d1"), "d1", CUSTOMER)
        b = Route("d2", ("x", "d2"), "d2", CUSTOMER)
        with pytest.raises(ValueError):
            prefer(a, b)

    def test_loop_detection(self):
        route = Route("d", ("x", "y", "d"), "y", PEER)
        assert route.contains_loop_for("y")
        assert not route.contains_loop_for("z")

    def test_route_class(self, small_hierarchy):
        _, rels = small_hierarchy
        assert route_class(rels, "top1", "mid") == CUSTOMER
        assert route_class(rels, "mid", "top1") == PROVIDER
        assert route_class(rels, "top1", "top2") == PEER


class TestConvergence:
    def test_everyone_routed_on_hierarchy(self, small_hierarchy):
        g, rels = small_hierarchy
        sim = BgpSimulation(g, rels, "leafA")
        stats = sim.converge()
        assert stats.routed_ases == 5
        assert stats.rounds >= 2
        assert stats.messages > 0

    def test_paths_are_valley_free_chains(self, small_hierarchy):
        g, rels = small_hierarchy
        sim = BgpSimulation(g, rels, "leafA")
        sim.converge()
        assert sim.path_from("leafB") == ("leafB", "top2", "top1", "mid", "leafA")

    def test_destination_routes_to_itself(self, small_hierarchy):
        g, rels = small_hierarchy
        sim = BgpSimulation(g, rels, "leafA")
        sim.converge()
        assert sim.path_from("leafA") == ("leafA",)

    def test_missing_destination_rejected(self, small_hierarchy):
        g, rels = small_hierarchy
        with pytest.raises(KeyError):
            BgpSimulation(g, rels, "ghost")

    def test_peer_only_island_unrouted(self):
        g = Graph()
        rels = RelationshipMap()
        g.add_edge("a", "b")
        rels.add_peering("a", "b")
        g.add_edge("c", "d")
        rels.add_peering("c", "d")
        sim = BgpSimulation(g, rels, "a")
        stats = sim.converge()
        assert sim.path_from("c") is None
        assert stats.routed_ases == 2

    def test_agrees_with_declarative_routing(self):
        from repro.generators import PfpGenerator

        g = giant_component(PfpGenerator().generate(250, seed=3))
        rels = assign_relationships(g)
        for dest in sorted(g.nodes(), key=str)[:5]:
            sim = BgpSimulation(g, rels, dest)
            sim.converge()
            table = routing_table(g, rels, dest)
            for node in g.nodes():
                if node == dest:
                    continue
                declarative = table.hops.get(node)
                path = sim.path_from(node)
                simulated = None if path is None else len(path) - 1
                assert declarative == simulated, (dest, node)


class TestWithdrawal:
    def test_reconvergence_after_failure(self, small_hierarchy):
        g, rels = small_hierarchy
        sim = BgpSimulation(g, rels, "leafA")
        sim.converge()
        sim.withdraw_link("top1", "top2")
        stats = sim.converge()
        # leafB's only valley-free route crossed the peering: now stranded.
        assert sim.path_from("leafB") is None
        assert stats.routed_ases == 3  # leafA, mid, top1 (and not top2)
        assert sim.path_from("top1") is not None

    def test_withdraw_unknown_link_rejected(self, small_hierarchy):
        g, rels = small_hierarchy
        sim = BgpSimulation(g, rels, "leafA")
        with pytest.raises(KeyError):
            sim.withdraw_link("leafA", "leafB")

    def test_redundant_path_survives_failure(self):
        g = Graph()
        rels = RelationshipMap()
        # stub multihomed to two providers that peer with each other.
        g.add_edge("stub", "p1")
        rels.add_customer_provider("stub", "p1")
        g.add_edge("stub", "p2")
        rels.add_customer_provider("stub", "p2")
        g.add_edge("p1", "p2")
        rels.add_peering("p1", "p2")
        sim = BgpSimulation(g, rels, "stub")
        sim.converge()
        sim.withdraw_link("stub", "p1")
        sim.converge()
        assert sim.path_from("p1") == ("p1", "p2", "stub")
