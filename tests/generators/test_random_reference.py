"""Tests for degree-preserving rewiring."""

import pytest

from repro.generators import (
    BarabasiAlbertGenerator,
    RandomReferenceGenerator,
    rewired_reference,
)
from repro.graph import average_clustering


class TestRewiredReference:
    def test_degree_sequence_preserved(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=5, seed=1)
        assert null.degrees() == medium_random.degrees()

    def test_edge_count_preserved(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=5, seed=2)
        assert null.num_edges == medium_random.num_edges

    def test_wiring_actually_changes(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=5, seed=3)
        ours = {frozenset(e) for e in medium_random.edges()}
        theirs = {frozenset(e) for e in null.edges()}
        assert ours != theirs

    def test_zero_swaps_is_copy(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=0, seed=4)
        ours = {frozenset(e) for e in medium_random.edges()}
        theirs = {frozenset(e) for e in null.edges()}
        assert ours == theirs

    def test_no_self_loops_or_multiedges(self, medium_random):
        null = rewired_reference(medium_random, swaps_per_edge=10, seed=5)
        seen = set()
        for u, v in null.edges():
            assert u != v
            key = frozenset((u, v))
            assert key not in seen
            seen.add(key)

    def test_destroys_clustering(self):
        g = BarabasiAlbertGenerator(m=3).generate(400, seed=6)
        null = rewired_reference(g, swaps_per_edge=10, seed=7)
        # Randomization should not *increase* clustering systematically.
        assert average_clustering(null) <= average_clustering(g) * 1.5

    def test_tiny_graph_passthrough(self, path4):
        small = rewired_reference(path4, swaps_per_edge=10, seed=8)
        assert small.num_edges == path4.num_edges

    def test_negative_swaps_rejected(self, path4):
        with pytest.raises(ValueError):
            rewired_reference(path4, swaps_per_edge=-1)

    def test_weights_reset_to_one(self):
        from repro.graph import Graph

        g = Graph()
        g.add_edge(0, 1, weight=5.0)
        g.add_edge(2, 3, weight=5.0)
        g.add_edge(4, 5)
        null = rewired_reference(g, swaps_per_edge=3, seed=9)
        assert all(w == 1.0 for _, _, w in null.weighted_edges())


class TestGeneratorWrapper:
    def test_generates_randomization(self, medium_random):
        gen = RandomReferenceGenerator(medium_random, swaps_per_edge=3)
        null = gen.generate(medium_random.num_nodes, seed=1)
        assert null.degrees() == medium_random.degrees()

    def test_size_mismatch_rejected(self, medium_random):
        gen = RandomReferenceGenerator(medium_random)
        with pytest.raises(ValueError):
            gen.generate(10, seed=1)
