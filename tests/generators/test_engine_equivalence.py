"""Engine-equivalence suite: the vector growth kernels vs the reference loops.

Two contracts, per :mod:`repro.generators.engine`:

* **draw-order-preserving** generators (``engine_sensitive = False``)
  must produce the *same graph* — identical :meth:`Graph.fingerprint` —
  from either engine for any seed;
* **engine-sensitive** generators (``engine_sensitive = True``) must
  produce *distributionally equivalent* graphs: identical node counts,
  mean degree within a few percent, and a small two-sample KS distance
  between degree distributions pooled across seeds.

Plus the selection machinery itself: explicit > environment > size
threshold, validated everywhere, and the resolved engine joining the
battery cache identity for engine-sensitive generators only.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    AlbertBarabasiGenerator,
    BarabasiAlbertGenerator,
    BianconiBarabasiGenerator,
    BriteGenerator,
    GlpGenerator,
    InetGenerator,
    PfpGenerator,
    PlrgGenerator,
    SerranoGenerator,
    TransitStubGenerator,
    WaxmanGenerator,
)
from repro.generators import engine as engine_mod
from repro.generators.engine import AUTO_VECTOR_THRESHOLD, resolve_engine
from repro.stats.distributions import ks_distance

# ---------------------------------------------------------------- selection


class TestResolveEngine:
    def test_explicit_choices_pass_through(self):
        assert resolve_engine("python", 10**9) == "python"
        assert resolve_engine("vector", 1) == "vector"

    def test_auto_uses_size_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine("auto", AUTO_VECTOR_THRESHOLD - 1) == "python"
        assert resolve_engine("auto", AUTO_VECTOR_THRESHOLD) == "vector"

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine("auto", 1) == "vector"
        monkeypatch.setenv("REPRO_ENGINE", "python")
        assert resolve_engine("auto", 10**9) == "python"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        assert resolve_engine("python", 10**9) == "python"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("fortran", 100)

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fortran")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            resolve_engine("auto", 100)

    def test_generator_setter_validates(self):
        generator = WaxmanGenerator()
        with pytest.raises(ValueError, match="unknown engine"):
            generator.engine = "fortran"

    @given(
        size=st.integers(min_value=1, max_value=3 * AUTO_VECTOR_THRESHOLD),
        choice=st.sampled_from(["auto", "python", "vector"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_resolution_is_total_and_consistent(self, size, choice):
        # Manual env scrub (not monkeypatch): hypothesis runs many examples
        # per test call, which function-scoped fixtures can't wrap.
        import os

        saved_env = os.environ.pop("REPRO_ENGINE", None)
        try:
            resolved = resolve_engine(choice, size)
            assert resolved in ("python", "vector")
            if choice != "auto":
                assert resolved == choice
            else:
                assert resolved == (
                    "vector" if size >= AUTO_VECTOR_THRESHOLD else "python"
                )
        finally:
            if saved_env is not None:
                os.environ["REPRO_ENGINE"] = saved_env


class TestCacheIdentity:
    def test_engine_never_in_params(self):
        for generator in (WaxmanGenerator(engine="vector"), SerranoGenerator()):
            assert "engine" not in generator.params()

    def test_order_preserving_cache_params_engine_free(self):
        generator = WaxmanGenerator(engine="vector")
        assert "engine" not in generator.cache_params(500)

    def test_sensitive_cache_params_carry_resolved_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        generator = SerranoGenerator(engine="vector")
        assert generator.cache_params(500)["engine"] == "vector"
        generator.engine = "auto"
        assert generator.cache_params(500)["engine"] == "python"
        assert (
            generator.cache_params(AUTO_VECTOR_THRESHOLD)["engine"] == "vector"
        )

    def test_classification(self):
        sensitive = (
            SerranoGenerator, BarabasiAlbertGenerator, AlbertBarabasiGenerator,
            BianconiBarabasiGenerator, GlpGenerator, PfpGenerator,
        )
        preserving = (
            WaxmanGenerator, PlrgGenerator, TransitStubGenerator,
            InetGenerator, BriteGenerator,
        )
        assert all(cls.engine_sensitive for cls in sensitive)
        assert not any(cls.engine_sensitive for cls in preserving)


# ------------------------------------------- draw-order-preserving: identity

ORDER_PRESERVING = {
    "waxman": lambda e: WaxmanGenerator(engine=e),
    "plrg": lambda e: PlrgGenerator(engine=e),
    "transit-stub": lambda e: TransitStubGenerator(engine=e),
    "inet": lambda e: InetGenerator(engine=e),
    "brite": lambda e: BriteGenerator(engine=e),
}


class TestFingerprintIdentity:
    @pytest.mark.parametrize("name", sorted(ORDER_PRESERVING))
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("n", [160, 700])  # transit-stub needs n >= 128
    def test_same_graph_from_both_engines(self, name, seed, n):
        make = ORDER_PRESERVING[name]
        python_graph = make("python").generate(n, seed=seed)
        vector_graph = make("vector").generate(n, seed=seed)
        assert python_graph.fingerprint() == vector_graph.fingerprint()

    def test_brite_geometric_variant_identical(self):
        for seed in (1, 2):
            python_graph = BriteGenerator(geometry=True, engine="python").generate(
                400, seed=seed
            )
            vector_graph = BriteGenerator(geometry=True, engine="vector").generate(
                400, seed=seed
            )
            assert python_graph.fingerprint() == vector_graph.fingerprint()

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=40, max_value=260),
    )
    @settings(max_examples=12, deadline=None)
    def test_waxman_identity_is_seed_universal(self, seed, n):
        python_graph = WaxmanGenerator(engine="python").generate(n, seed=seed)
        vector_graph = WaxmanGenerator(engine="vector").generate(n, seed=seed)
        assert python_graph.fingerprint() == vector_graph.fingerprint()


class TestAutoThresholdStraddle:
    """engine="auto" must swap kernels exactly at the threshold — and the
    swap must be invisible for draw-order-preserving generators."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        offset=st.integers(min_value=-3, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_fingerprints_stable_across_threshold(self, seed, offset):
        # Manual patching: hypothesis generates many inputs per test call,
        # which pytest's function-scoped monkeypatch fixture can't wrap.
        import os

        threshold = 150
        saved_threshold = engine_mod.AUTO_VECTOR_THRESHOLD
        saved_env = os.environ.pop("REPRO_ENGINE", None)
        engine_mod.AUTO_VECTOR_THRESHOLD = threshold
        try:
            n = threshold + offset
            generator = WaxmanGenerator()  # engine defaults to auto
            expected = "vector" if n >= threshold else "python"
            assert generator.resolve_engine(n) == expected
            auto_graph = generator.generate(n, seed=seed)
            pinned = WaxmanGenerator(engine=expected).generate(n, seed=seed)
            assert auto_graph.fingerprint() == pinned.fingerprint()
        finally:
            engine_mod.AUTO_VECTOR_THRESHOLD = saved_threshold
            if saved_env is not None:
                os.environ["REPRO_ENGINE"] = saved_env


# ------------------------------------------------ engine-sensitive: KS bands

ENGINE_SENSITIVE = {
    "barabasi-albert": lambda e: BarabasiAlbertGenerator(m=2, engine=e),
    "albert-barabasi": lambda e: AlbertBarabasiGenerator(engine=e),
    "bianconi-barabasi": lambda e: BianconiBarabasiGenerator(m=2, engine=e),
    "glp": lambda e: GlpGenerator(engine=e),
    "pfp": lambda e: PfpGenerator(engine=e),
    "serrano": lambda e: SerranoGenerator(engine=e),
}

#: Pooled-degree KS ceiling.  Same-engine/different-seed runs of these
#: models sit around 0.01-0.03 at this size; 0.08 catches a real kernel
#: divergence while staying robust to seed noise.
KS_CEILING = 0.08

#: Relative mean-degree tolerance between engines (pooled across seeds).
MEAN_DEGREE_RTOL = 0.08


class TestDistributionalEquivalence:
    @pytest.mark.parametrize("name", sorted(ENGINE_SENSITIVE))
    def test_degree_distributions_match(self, name):
        make = ENGINE_SENSITIVE[name]
        n, seeds = 1500, (11, 23, 47)
        python_degrees = []
        vector_degrees = []
        python_edges = vector_edges = 0
        for seed in seeds:
            python_graph = make("python").generate(n, seed=seed)
            vector_graph = make("vector").generate(n, seed=seed)
            assert python_graph.num_nodes == n
            assert vector_graph.num_nodes == n
            python_degrees.extend(
                python_graph.degree(u) for u in python_graph.nodes()
            )
            vector_degrees.extend(
                vector_graph.degree(u) for u in vector_graph.nodes()
            )
            python_edges += python_graph.num_edges
            vector_edges += vector_graph.num_edges
        assert ks_distance(python_degrees, vector_degrees) < KS_CEILING
        assert vector_edges == pytest.approx(
            python_edges, rel=MEAN_DEGREE_RTOL
        )

    def test_serrano_conserves_users_and_weight(self):
        python_run = SerranoGenerator(engine="python").generate_detailed(
            900, seed=5
        )
        vector_run = SerranoGenerator(engine="vector").generate_detailed(
            900, seed=5
        )
        assert python_run.total_users == vector_run.total_users
        assert vector_run.graph.total_weight == pytest.approx(
            python_run.graph.total_weight, rel=0.05
        )

    def test_bb_custom_fitness_callable_still_works(self):
        # Single-valued fitness reduces BB to BA on either engine.
        make = lambda e: BianconiBarabasiGenerator(
            m=2, fitness=lambda rng: 1.0, engine=e
        )
        python_graph = make("python").generate(600, seed=3)
        vector_graph = make("vector").generate(600, seed=3)
        assert python_graph.num_edges == vector_graph.num_edges
        degrees = lambda g: sorted(g.degree(u) for u in g.nodes())
        assert (
            ks_distance(degrees(python_graph), degrees(vector_graph))
            < KS_CEILING
        )


# --------------------------------------------------------------- smoke: env


class TestEnvSelection:
    def test_env_flips_a_default_generator(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vector")
        generator = WaxmanGenerator()
        assert generator.resolve_engine(50) == "vector"
        graph = generator.generate(80, seed=1)
        monkeypatch.setenv("REPRO_ENGINE", "python")
        reference = WaxmanGenerator().generate(80, seed=1)
        assert graph.fingerprint() == reference.fingerprint()
