"""Tests for the generator framework."""

import pytest

from repro.generators import BarabasiAlbertGenerator, GenerationError, TopologyGenerator
from repro.generators.base import _validate_size


class TestParams:
    def test_params_reports_public_attrs(self):
        gen = BarabasiAlbertGenerator(m=3)
        assert gen.params() == {"m": 3}

    def test_private_attrs_hidden(self):
        from repro.generators import WaxmanGenerator

        gen = WaxmanGenerator()
        assert all(not key.startswith("_") for key in gen.params())

    def test_describe_contains_name_and_params(self):
        gen = BarabasiAlbertGenerator(m=2)
        text = gen.describe()
        assert "barabasi-albert" in text
        assert "m=2" in text

    def test_repr(self):
        assert "barabasi-albert" in repr(BarabasiAlbertGenerator())


class TestValidateSize:
    def test_accepts_minimum(self):
        _validate_size(3, minimum=3)

    def test_rejects_below_minimum(self):
        with pytest.raises(GenerationError):
            _validate_size(2, minimum=3)


class TestAbstract:
    def test_cannot_instantiate_base(self):
        with pytest.raises(TypeError):
            TopologyGenerator()
