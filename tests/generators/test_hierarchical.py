"""Tests for the two-level router expansion."""

import pytest

from repro.generators import (
    BarabasiAlbertGenerator,
    SerranoGenerator,
    TwoLevelGenerator,
)
from repro.graph import giant_component, is_connected


@pytest.fixture(scope="module")
def expanded():
    gen = TwoLevelGenerator(BarabasiAlbertGenerator(m=2))
    return gen.generate(100, seed=7)


class TestTwoLevel:
    def test_router_ids_carry_as_ownership(self, expanded):
        for router in expanded.nodes():
            as_id, index = router
            assert isinstance(index, int)

    def test_more_routers_than_ases(self, expanded):
        as_ids = {as_id for as_id, _ in expanded.nodes()}
        assert len(as_ids) == 100
        assert expanded.num_nodes > 300  # base_routers=3 per AS minimum

    def test_connected(self, expanded):
        assert is_connected(expanded)

    def test_pocket_sizes_scale_with_degree(self):
        gen = TwoLevelGenerator(
            BarabasiAlbertGenerator(m=2), routers_per_degree=1.0
        )
        router_graph = gen.generate(150, seed=8)
        as_graph = BarabasiAlbertGenerator(m=2).generate(150, seed=None)
        pocket_counts = {}
        for as_id, _ in router_graph.nodes():
            pocket_counts[as_id] = pocket_counts.get(as_id, 0) + 1
        # Hubs must own the biggest pockets (within the cap).
        biggest_pocket_as = max(pocket_counts, key=pocket_counts.get)
        assert pocket_counts[biggest_pocket_as] > 3

    def test_max_routers_cap(self):
        gen = TwoLevelGenerator(
            BarabasiAlbertGenerator(m=2), routers_per_degree=10.0, max_routers=8
        )
        router_graph = gen.generate(80, seed=9)
        pocket_counts = {}
        for as_id, _ in router_graph.nodes():
            pocket_counts[as_id] = pocket_counts.get(as_id, 0) + 1
        assert max(pocket_counts.values()) <= 8

    def test_bandwidth_becomes_parallel_links(self):
        # Weighted AS edges expand into >= weight inter-pocket links in
        # aggregate (parallel picks may collapse onto the same router pair,
        # reinforcing weight instead).
        gen = TwoLevelGenerator(SerranoGenerator(omega0=20))
        router_graph = gen.generate(60, seed=10)
        inter_pocket_weight = sum(
            w for u, v, w in router_graph.weighted_edges() if u[0] != v[0]
        )
        as_graph = SerranoGenerator(omega0=20).generate(60, seed=None)
        assert inter_pocket_weight > 0

    def test_reproducible(self):
        gen = TwoLevelGenerator(BarabasiAlbertGenerator(m=1))
        a = gen.generate(50, seed=11)
        b = gen.generate(50, seed=11)
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}

    def test_validation(self):
        ba = BarabasiAlbertGenerator(m=1)
        with pytest.raises(ValueError):
            TwoLevelGenerator(ba, base_routers=0)
        with pytest.raises(ValueError):
            TwoLevelGenerator(ba, routers_per_degree=-1)
        with pytest.raises(ValueError):
            TwoLevelGenerator(ba, max_routers=1, base_routers=5)
        with pytest.raises(ValueError):
            TwoLevelGenerator(ba, chord_fraction=-0.1)
