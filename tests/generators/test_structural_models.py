"""Tests for structural generators (PLRG, Inet, HOT, transit-stub)."""

import pytest

from repro.generators import (
    GenerationError,
    HotGenerator,
    InetGenerator,
    PlrgGenerator,
    TransitStubGenerator,
    configuration_model,
)
from repro.graph import (
    average_clustering,
    degree_assortativity,
    giant_component,
    is_connected,
    total_triangles,
)
from repro.stats import fit_powerlaw_auto_xmin


class TestConfigurationModel:
    def test_regular_sequence(self):
        g = configuration_model([2] * 10, seed=1)
        assert g.num_nodes == 10
        assert all(d <= 2 for d in g.degrees().values())

    def test_odd_sum_rejected(self):
        with pytest.raises(GenerationError):
            configuration_model([1, 1, 1], seed=2)

    def test_negative_degree_rejected(self):
        with pytest.raises(GenerationError):
            configuration_model([2, -1, 1], seed=3)

    def test_realized_degrees_bounded_by_prescribed(self):
        degrees = [5, 3, 3, 2, 2, 1, 1, 1]
        g = configuration_model(degrees, seed=4)
        for node, d in g.degrees().items():
            assert d <= degrees[node]

    def test_empty_sequence(self):
        g = configuration_model([], seed=5)
        assert g.num_nodes == 0


class TestPlrg:
    def test_size(self):
        assert PlrgGenerator().generate(500, seed=1).num_nodes == 500

    def test_degree_sequence_even_sum(self):
        degrees = PlrgGenerator().degree_sequence(501, seed=2)
        assert sum(degrees) % 2 == 0

    def test_heavy_tail_preserved(self):
        g = PlrgGenerator(gamma=2.2).generate(4000, seed=3)
        fit = fit_powerlaw_auto_xmin(
            [d for d in g.degrees().values() if d > 0], min_tail=100
        )
        assert fit.gamma == pytest.approx(2.2, abs=0.35)

    def test_no_growth_correlations(self):
        # PLRG's giant component should have weak clustering relative to
        # growth models with internal linking.
        g = giant_component(PlrgGenerator().generate(2000, seed=4))
        assert average_clustering(g) < 0.15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PlrgGenerator(gamma=1.0)
        with pytest.raises(ValueError):
            PlrgGenerator(k_min=0)
        with pytest.raises(ValueError):
            PlrgGenerator(k_max_fraction=0.0)


class TestInet:
    def test_size(self):
        assert InetGenerator().generate(400, seed=1).num_nodes == 400

    def test_connected(self):
        assert is_connected(InetGenerator().generate(400, seed=2))

    def test_degree_one_fraction_respected(self):
        g = InetGenerator(degree_one_fraction=0.3).generate(1000, seed=3)
        ones = sum(1 for d in g.degrees().values() if d == 1)
        assert ones == pytest.approx(300, rel=0.25)

    def test_heavy_tail(self):
        g = InetGenerator().generate(3000, seed=4)
        fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=100)
        assert 1.9 < fit.gamma < 2.7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InetGenerator(gamma=0.9)
        with pytest.raises(ValueError):
            InetGenerator(degree_one_fraction=1.0)
        with pytest.raises(GenerationError):
            InetGenerator(degree_one_fraction=0.9).generate(5, seed=5)


class TestHot:
    def test_tree_when_no_extras(self):
        g = HotGenerator(extra_links=0).generate(300, seed=1)
        assert g.num_edges == 299
        assert is_connected(g)
        assert total_triangles(g) == 0

    def test_extra_links_add_redundancy(self):
        g = HotGenerator(extra_links=1).generate(300, seed=2)
        assert g.num_edges > 299

    def test_alpha_zero_is_star(self):
        # With no distance cost everyone attaches to the root (h=0).
        g = HotGenerator(alpha=0.0).generate(50, seed=3)
        assert g.max_degree == 49

    def test_huge_alpha_is_nearest_neighbor_tree(self):
        g = HotGenerator(alpha=1e9).generate(200, seed=4)
        # Distance dominates: hubs should stay small.
        assert g.max_degree < 25

    def test_intermediate_alpha_heavy_tailed(self):
        g = HotGenerator().generate(2000, seed=5)
        assert g.max_degree > 30  # hubs emerge at the FKP sweet spot

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HotGenerator(alpha=-1.0)
        with pytest.raises(ValueError):
            HotGenerator(extra_links=-1)


class TestTransitStub:
    def test_size_close(self):
        g = TransitStubGenerator().generate(1000, seed=1)
        assert abs(g.num_nodes - 1000) <= 100

    def test_connected(self):
        assert is_connected(TransitStubGenerator().generate(500, seed=2))

    def test_homogeneous_degrees(self):
        g = TransitStubGenerator().generate(800, seed=3)
        assert g.max_degree < 30  # no heavy tail by construction

    def test_too_small_n_rejected(self):
        with pytest.raises(GenerationError):
            TransitStubGenerator(
                transit_domains=2, transit_size=4, stubs_per_transit=2
            ).generate(10, seed=4)

    def test_transit_only_configuration(self):
        gen = TransitStubGenerator(
            transit_domains=2, transit_size=5, stubs_per_transit=0
        )
        g = gen.generate(10, seed=5)
        assert g.num_nodes == 10
        with pytest.raises(GenerationError):
            gen.generate(11, seed=5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TransitStubGenerator(transit_domains=0)
        with pytest.raises(ValueError):
            TransitStubGenerator(intra_edge_prob=1.5)
