"""Contract tests every registered generator must satisfy."""

import pytest

from repro.core.registry import available_models, make_generator
from repro.graph import giant_component

# Per-model kwargs that keep n=200 runs valid and fast.
MODEL_PARAMS = {
    "erdos-renyi-gnp": {"p": 0.02},
    "erdos-renyi-gnm": {"m": 400},
    "waxman": {"beta": 0.3},
    "barabasi-albert": {"m": 2},
    "albert-barabasi": {"m": 2},
    "glp": {},
    "plrg": {},
    "inet": {},
    "pfp": {},
    "hot": {"extra_links": 1},
    "transit-stub": {"transit_domains": 2, "transit_size": 4, "stubs_per_transit": 3},
    "serrano": {"omega0": 20},
    "watts-strogatz": {"k": 4, "p": 0.1},
    "bianconi-barabasi": {"m": 2},
    "brite": {"m": 2},
}


@pytest.fixture(params=sorted(MODEL_PARAMS))
def model_name(request):
    return request.param


def build(model_name, n=200, seed=11):
    return make_generator(model_name, **MODEL_PARAMS[model_name]).generate(n, seed=seed)


class TestGeneratorContract:
    def test_all_models_covered(self):
        assert set(MODEL_PARAMS) == set(available_models())

    def test_size_close_to_requested(self, model_name):
        g = build(model_name)
        assert abs(g.num_nodes - 200) <= 10

    def test_no_self_loops_possible(self, model_name):
        g = build(model_name)
        for u, v in g.edges():
            assert u != v

    def test_seed_reproducibility(self, model_name):
        a = build(model_name, seed=42)
        b = build(model_name, seed=42)
        assert set(a.nodes()) == set(b.nodes())
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}

    def test_different_seeds_differ(self, model_name):
        a = build(model_name, seed=1)
        b = build(model_name, seed=2)
        edges_a = {frozenset(e) for e in a.edges()}
        edges_b = {frozenset(e) for e in b.edges()}
        assert edges_a != edges_b

    def test_positive_edges(self, model_name):
        assert build(model_name).num_edges > 0

    def test_giant_component_dominant(self, model_name):
        g = build(model_name)
        assert giant_component(g).num_nodes >= 0.6 * g.num_nodes

    def test_weights_positive(self, model_name):
        g = build(model_name)
        assert all(w > 0 for _, _, w in g.weighted_edges())
