"""Tests for dK-series generation."""

import pytest

from repro.generators import (
    BarabasiAlbertGenerator,
    Dk2Generator,
    GlpGenerator,
    dk2_rewired,
    joint_degree_matrix,
    rewired_reference,
)
from repro.graph import average_clustering, degree_assortativity


@pytest.fixture(scope="module")
def template():
    return GlpGenerator().generate(300, seed=1)


class TestJointDegreeMatrix:
    def test_triangle(self, triangle):
        assert joint_degree_matrix(triangle) == {(2, 2): 3}

    def test_star(self, star):
        assert joint_degree_matrix(star) == {(1, 5): 5}

    def test_total_equals_edge_count(self, template):
        jdm = joint_degree_matrix(template)
        assert sum(jdm.values()) == template.num_edges

    def test_keys_ordered(self, template):
        assert all(j <= k for j, k in joint_degree_matrix(template))


class TestDk2Rewired:
    def test_degrees_preserved(self, template):
        null = dk2_rewired(template, swaps_per_edge=5, seed=2)
        assert null.degrees() == template.degrees()

    def test_jdm_preserved_exactly(self, template):
        null = dk2_rewired(template, swaps_per_edge=5, seed=3)
        assert joint_degree_matrix(null) == joint_degree_matrix(template)

    def test_wiring_changes(self, template):
        null = dk2_rewired(template, swaps_per_edge=5, seed=4)
        ours = {frozenset(e) for e in template.edges()}
        theirs = {frozenset(e) for e in null.edges()}
        assert ours != theirs

    def test_assortativity_preserved(self, template):
        # r is a function of the JDM, so 2K rewiring must preserve it.
        null = dk2_rewired(template, swaps_per_edge=5, seed=5)
        assert degree_assortativity(null) == pytest.approx(
            degree_assortativity(template), abs=1e-9
        )

    def test_1k_null_does_not_preserve_jdm(self, template):
        # Contrast: plain Maslov-Sneppen (1K) changes the JDM.
        null = rewired_reference(template, swaps_per_edge=5, seed=6)
        assert joint_degree_matrix(null) != joint_degree_matrix(template)

    def test_higher_order_randomized(self):
        # Clustering (a 3K property) should change under 2K rewiring on a
        # clustered template.
        template = GlpGenerator().generate(600, seed=7)
        null = dk2_rewired(template, swaps_per_edge=10, seed=8)
        assert average_clustering(null) != pytest.approx(
            average_clustering(template), abs=1e-6
        )

    def test_zero_swaps_is_copy(self, template):
        null = dk2_rewired(template, swaps_per_edge=0, seed=9)
        assert {frozenset(e) for e in null.edges()} == {
            frozenset(e) for e in template.edges()
        }

    def test_negative_rejected(self, template):
        with pytest.raises(ValueError):
            dk2_rewired(template, swaps_per_edge=-1)


class TestDk2Generator:
    def test_generate(self, template):
        gen = Dk2Generator(template, swaps_per_edge=3)
        null = gen.generate(template.num_nodes, seed=10)
        assert joint_degree_matrix(null) == joint_degree_matrix(template)

    def test_size_mismatch_rejected(self, template):
        with pytest.raises(ValueError):
            Dk2Generator(template).generate(10, seed=1)

    def test_seeds_give_different_nulls(self, template):
        gen = Dk2Generator(template, swaps_per_edge=3)
        a = gen.generate(template.num_nodes, seed=11)
        b = gen.generate(template.num_nodes, seed=12)
        assert {frozenset(e) for e in a.edges()} != {frozenset(e) for e in b.edges()}
