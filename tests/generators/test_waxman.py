"""Tests for the Waxman generator."""

import pytest

from repro.generators import WaxmanGenerator
from repro.graph import is_connected
from repro.stats import fit_powerlaw_auto_xmin


class TestWaxman:
    def test_connected_by_default(self):
        g = WaxmanGenerator(beta=0.1).generate(300, seed=1)
        assert is_connected(g)

    def test_unconnected_mode_may_fragment(self):
        g = WaxmanGenerator(alpha=0.05, beta=0.05, connect=False).generate(200, seed=2)
        # With tiny alpha/beta fragmentation is overwhelmingly likely.
        from repro.graph import connected_components

        assert len(connected_components(g)) > 1

    def test_degree_calibration(self):
        n, target = 500, 6.0
        beta = WaxmanGenerator.beta_for_average_degree(n, target)
        g = WaxmanGenerator(beta=beta, connect=False).generate(n, seed=3)
        assert g.average_degree == pytest.approx(target, rel=0.2)

    def test_calibration_validates_inputs(self):
        with pytest.raises(ValueError):
            WaxmanGenerator.beta_for_average_degree(1, 5.0)
        with pytest.raises(ValueError):
            WaxmanGenerator.beta_for_average_degree(100, 0.0)

    def test_no_heavy_tail(self):
        beta = WaxmanGenerator.beta_for_average_degree(800, 4.0)
        g = WaxmanGenerator(beta=beta).generate(800, seed=4)
        # Either the fit fails (no tail) or the fitted exponent is steep.
        try:
            fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=50)
            assert fit.gamma > 3.0
        except ValueError:
            pass  # no fittable tail: expected for Waxman

    def test_shorter_links_favored(self):
        gen = WaxmanGenerator(alpha=0.05, beta=0.5, connect=False)
        g = gen.generate(300, seed=5)
        # Compare mean link distance against mean random-pair distance.
        from repro.geometry import Plane
        import random

        # Rebuild positions deterministically the way generate() does.
        from repro.stats.rng import make_numpy_rng, make_rng

        rng = make_rng(5)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        xs = np_rng.random(300)
        ys = np_rng.random(300)
        import math

        link_d = [
            math.hypot(xs[u] - xs[v], ys[u] - ys[v]) for u, v in g.edges()
        ]
        rnd = random.Random(0)
        pair_d = [
            math.hypot(
                xs[rnd.randrange(300)] - xs[rnd.randrange(300)],
                ys[rnd.randrange(300)] - ys[rnd.randrange(300)],
            )
            for _ in range(2000)
        ]
        assert sum(link_d) / len(link_d) < 0.7 * (sum(pair_d) / len(pair_d))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            WaxmanGenerator(alpha=0.0)
        with pytest.raises(ValueError):
            WaxmanGenerator(beta=1.5)
