"""Tests for the weighted supply/demand growth model."""

import math

import numpy as np
import pytest

from repro.generators import SerranoGenerator
from repro.graph import degree_assortativity, giant_component
from repro.stats import (
    fit_exponential_growth,
    fit_power_scaling,
    fit_powerlaw_auto_xmin,
)


@pytest.fixture(scope="module")
def run_1500():
    """One shared medium-size run for the expensive assertions."""
    return SerranoGenerator().generate_detailed(1500, seed=13)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SerranoGenerator(omega0=1)
        with pytest.raises(ValueError):
            SerranoGenerator(n0=1)
        with pytest.raises(ValueError):
            SerranoGenerator(alpha=0.02, beta=0.03)  # beta >= alpha
        with pytest.raises(ValueError):
            SerranoGenerator(delta_prime=0.03)  # <= alpha
        with pytest.raises(ValueError):
            SerranoGenerator(r=1.0)
        with pytest.raises(ValueError):
            SerranoGenerator(churn=1.0)

    def test_predicted_exponents(self):
        gen = SerranoGenerator(alpha=0.035, beta=0.03, delta_prime=0.04)
        assert gen.predicted_mu == pytest.approx(0.75)
        assert gen.predicted_delta == pytest.approx(0.03375)
        assert gen.predicted_gamma == pytest.approx(2.1428, abs=1e-3)
        assert gen.tau == pytest.approx(6.0 / 7.0)


class TestBasicRun:
    def test_exact_size(self):
        g = SerranoGenerator().generate(300, seed=1)
        assert g.num_nodes == 300

    def test_seed_reproducible(self):
        a = SerranoGenerator().generate(200, seed=2)
        b = SerranoGenerator().generate(200, seed=2)
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}

    def test_users_conserve_arrivals(self, run_1500):
        history = run_1500.history["users"]
        # Final W should match the exponential target within rounding drift.
        final_t = history.times[-1]
        expected = 50 * 2 * math.exp(0.035 * final_t)
        assert run_1500.total_users == pytest.approx(expected, rel=0.01)

    def test_minimum_user_floor(self, run_1500):
        assert min(run_1500.users.values()) >= 1

    def test_multi_edges_present(self, run_1500):
        g = run_1500.graph
        assert g.total_weight > 1.2 * g.num_edges

    def test_history_keys(self, run_1500):
        assert set(run_1500.history) == {"users", "nodes", "edges", "bandwidth"}


class TestEmergentStructure:
    def test_heavy_tail_gamma(self, run_1500):
        degrees = [d for d in run_1500.graph.degrees().values() if d > 0]
        fit = fit_powerlaw_auto_xmin(degrees, min_tail=80)
        assert 1.8 < fit.gamma < 2.6

    def test_size_distribution_exponent(self, run_1500):
        sizes = [w for w in run_1500.users.values() if w > 0]
        fit = fit_powerlaw_auto_xmin(sizes, min_tail=80)
        # Theory: 1 + alpha/beta = 2.17; finite-size cutoff flattens a bit.
        assert 1.6 < fit.gamma < 2.6

    def test_degree_bandwidth_scaling_sublinear(self, run_1500):
        g = run_1500.graph
        pairs = [(g.strength(u), g.degree(u)) for u in g.nodes() if g.strength(u) >= 3]
        fit = fit_power_scaling([b for b, _ in pairs], [k for _, k in pairs])
        assert fit.exponent < 0.98  # k grows sublinearly with bandwidth

    def test_disassortative(self, run_1500):
        assert degree_assortativity(run_1500.graph) < -0.1

    def test_hub_scales_with_system(self, run_1500):
        g = run_1500.graph
        assert g.max_degree > 0.05 * g.num_nodes

    def test_growth_rates_recovered(self, run_1500):
        rates = {}
        for key, target in (("users", 0.035), ("nodes", 0.03)):
            series = run_1500.history[key]
            fit = fit_exponential_growth(series.times[10:], series.values[10:])
            rates[key] = fit.rate
            assert fit.rate == pytest.approx(target, abs=0.004)
        bw = run_1500.history["bandwidth"]
        fit = fit_exponential_growth(bw.times[30:], bw.values[30:])
        assert fit.rate == pytest.approx(0.04, abs=0.006)

    def test_edges_grow_slower_than_bandwidth(self, run_1500):
        edges = run_1500.history["edges"]
        bandwidth = run_1500.history["bandwidth"]
        e_rate = fit_exponential_growth(edges.times[30:], edges.values[30:]).rate
        b_rate = fit_exponential_growth(bandwidth.times[30:], bandwidth.values[30:]).rate
        assert e_rate < b_rate


class TestDistanceVariant:
    def test_positions_recorded(self):
        run = SerranoGenerator(distance=True).generate_detailed(200, seed=3)
        assert len(run.positions) == 200
        assert all(0 <= p.x <= 1 and 0 <= p.y <= 1 for p in run.positions.values())

    def test_no_positions_without_distance(self):
        run = SerranoGenerator().generate_detailed(150, seed=4)
        assert run.positions == {}

    def test_distance_variant_still_heavy_tailed(self):
        g = SerranoGenerator(distance=True).generate(1000, seed=5)
        degrees = [d for d in giant_component(g).degrees().values()]
        fit = fit_powerlaw_auto_xmin(degrees, min_tail=60)
        assert 1.7 < fit.gamma < 2.7

    def test_auto_kappa_positive(self):
        gen = SerranoGenerator(distance=True)
        assert gen._auto_kappa(1000) > 0

    def test_explicit_kappa_respected(self):
        gen = SerranoGenerator(distance=True, kappa=5.0)
        g = gen.generate(150, seed=6)
        assert g.num_nodes == 150


class TestSnapshots:
    def test_snapshots_captured_at_sizes(self):
        run = SerranoGenerator().generate_detailed(
            600, seed=9, snapshot_sizes=[150, 300, 600]
        )
        assert set(run.snapshots) == {150, 300, 600}
        for size, graph in run.snapshots.items():
            assert graph.num_nodes >= size
            # Captures happen at step boundaries: within one step's growth.
            assert graph.num_nodes <= size * 1.1 + 5

    def test_snapshots_prefix_consistent(self):
        run = SerranoGenerator().generate_detailed(
            500, seed=10, snapshot_sizes=[200, 500]
        )
        early = run.snapshots[200]
        late = run.snapshots[500]
        for u, v in early.edges():
            assert late.has_edge(u, v)

    def test_snapshot_is_frozen_copy(self):
        run = SerranoGenerator().generate_detailed(
            300, seed=11, snapshot_sizes=[150]
        )
        snap_edges = run.snapshots[150].num_edges
        assert run.graph.num_edges > snap_edges  # growth continued after

    def test_no_snapshots_by_default(self):
        run = SerranoGenerator().generate_detailed(150, seed=12)
        assert run.snapshots == {}

    def test_invalid_sizes_rejected(self):
        gen = SerranoGenerator()
        with pytest.raises(ValueError):
            gen.generate_detailed(300, seed=13, snapshot_sizes=[1])
        with pytest.raises(ValueError):
            gen.generate_detailed(300, seed=13, snapshot_sizes=[400])


class TestAnalyticClaims:
    def test_churn_is_drift_free(self):
        # The lambda term only adds diffusion: the size-distribution tail
        # exponent must be churn-invariant (the paper's analytic claim).
        from repro.stats import fit_powerlaw_auto_xmin

        # Pinned to the reference kernel: the single-seed gamma band is too
        # tight for the vector engine's reordered draws at this small n.
        quiet = SerranoGenerator(churn=0.0, engine="python").generate_detailed(
            800, seed=21
        )
        churned = SerranoGenerator(
            churn=0.05, engine="python"
        ).generate_detailed(800, seed=21)
        fit_quiet = fit_powerlaw_auto_xmin(
            [w for w in quiet.users.values() if w > 0], min_tail=60
        )
        fit_churned = fit_powerlaw_auto_xmin(
            [w for w in churned.users.values() if w > 0], min_tail=60
        )
        assert abs(fit_quiet.gamma - fit_churned.gamma) < 0.5

    def test_densification_law(self):
        # E(t) grows superlinearly in N(t): delta/beta > 1 by construction,
        # the "densification power law" the growth measurements report.
        from repro.stats import fit_power_scaling

        run = SerranoGenerator().generate_detailed(1200, seed=22)
        nodes = run.history["nodes"].values[20:]
        edges = run.history["edges"].values[20:]
        fit = fit_power_scaling(nodes, edges)
        assert 1.0 < fit.exponent < 1.5


class TestChurn:
    def test_churn_conserves_users(self):
        run = SerranoGenerator(churn=0.05).generate_detailed(200, seed=7)
        final_t = run.history["users"].times[-1]
        expected = 100 * math.exp(0.035 * final_t)
        assert run.total_users == pytest.approx(expected, rel=0.02)

    def test_churn_run_completes(self):
        g = SerranoGenerator(churn=0.1).generate(150, seed=8)
        assert g.num_nodes == 150
