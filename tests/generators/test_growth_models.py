"""Tests for the degree-driven growth generators (BA, AB, GLP, PFP)."""

import pytest

from repro.generators import (
    AlbertBarabasiGenerator,
    BarabasiAlbertGenerator,
    GenerationError,
    GlpGenerator,
    PfpGenerator,
    preferential_targets,
)
from repro.graph import (
    average_clustering,
    degeneracy,
    giant_component,
    is_connected,
)
from repro.stats import fit_discrete_powerlaw, fit_powerlaw_auto_xmin


class TestPreferentialTargets:
    def test_excludes_self(self):
        import random

        rng = random.Random(1)
        targets = preferential_targets([1, 1, 2, 2], 2, rng, exclude=3)
        assert set(targets) == {1, 2}

    def test_distinct(self):
        import random

        rng = random.Random(2)
        for _ in range(20):
            targets = preferential_targets([1, 2, 3, 1, 2, 3], 3, rng, exclude=9)
            assert len(set(targets)) == 3

    def test_too_many_rejected(self):
        import random

        with pytest.raises(GenerationError):
            preferential_targets([1, 1], 2, random.Random(3), exclude=0)

    def test_empty_rejected(self):
        import random

        with pytest.raises(GenerationError):
            preferential_targets([], 1, random.Random(4), exclude=0)

    def test_degree_bias(self):
        import random

        rng = random.Random(5)
        repeated = [0] * 9 + [1]  # node 0 has 9x the weight
        hits = sum(
            preferential_targets(repeated, 1, rng, exclude=7)[0] == 0
            for _ in range(500)
        )
        assert hits > 400


class TestBarabasiAlbert:
    def test_exact_size(self):
        assert BarabasiAlbertGenerator(m=2).generate(500, seed=1).num_nodes == 500

    def test_edge_count(self):
        n, m = 400, 3
        g = BarabasiAlbertGenerator(m=m).generate(n, seed=2)
        seed_size = max(m, 3)
        assert g.num_edges == seed_size + (n - seed_size) * m

    def test_connected(self):
        assert is_connected(BarabasiAlbertGenerator(m=1).generate(300, seed=3))

    def test_gamma_near_three(self):
        g = BarabasiAlbertGenerator(m=2).generate(4000, seed=4)
        fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=100)
        assert fit.gamma == pytest.approx(3.0, abs=0.45)

    def test_degeneracy_equals_m(self):
        g = BarabasiAlbertGenerator(m=2).generate(500, seed=5)
        assert degeneracy(g) == 2

    def test_min_size_enforced(self):
        with pytest.raises(GenerationError):
            BarabasiAlbertGenerator(m=2).generate(3, seed=6)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            BarabasiAlbertGenerator(m=0)

    def test_min_degree_is_m(self):
        g = BarabasiAlbertGenerator(m=3).generate(300, seed=7)
        degrees = list(g.degrees().values())
        assert min(degrees) >= 2  # seed ring nodes have degree >= 2
        # Non-seed arrivals have degree >= m.
        assert sorted(degrees)[5] >= 3


class TestAlbertBarabasi:
    def test_exact_size(self):
        g = AlbertBarabasiGenerator(m=2, p=0.3, q=0.1).generate(400, seed=1)
        assert g.num_nodes == 400

    def test_denser_than_plain_ba(self):
        ba = BarabasiAlbertGenerator(m=2).generate(500, seed=2)
        ab = AlbertBarabasiGenerator(m=2, p=0.4, q=0.0).generate(500, seed=2)
        assert ab.average_degree > ba.average_degree

    def test_flatter_exponent_than_ba(self):
        ab = AlbertBarabasiGenerator(m=2, p=0.4, q=0.05).generate(4000, seed=3)
        fit = fit_powerlaw_auto_xmin(list(ab.degrees().values()), min_tail=100)
        assert fit.gamma < 2.9

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            AlbertBarabasiGenerator(p=0.7, q=0.4)
        with pytest.raises(ValueError):
            AlbertBarabasiGenerator(p=-0.1)

    def test_rewire_only_mode_runs(self):
        g = AlbertBarabasiGenerator(m=1, p=0.0, q=0.3).generate(200, seed=4)
        assert g.num_nodes == 200


class TestGlp:
    def test_exact_size(self):
        assert GlpGenerator().generate(400, seed=1).num_nodes == 400

    def test_gamma_in_as_range(self):
        g = GlpGenerator().generate(5000, seed=2)
        fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=150)
        assert 1.9 < fit.gamma < 2.6

    def test_higher_clustering_than_ba(self):
        ba = BarabasiAlbertGenerator(m=2).generate(1000, seed=3)
        glp = GlpGenerator().generate(1000, seed=3)
        assert average_clustering(glp) > average_clustering(ba)

    def test_average_degree_near_published(self):
        # <k> ≈ 2m/(1-p) ≈ 4.26 for the published parameters.
        g = GlpGenerator().generate(2000, seed=4)
        assert g.average_degree == pytest.approx(4.26, rel=0.2)

    def test_beta_one_rejected(self):
        with pytest.raises(ValueError):
            GlpGenerator(beta=1.0)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            GlpGenerator(m=0.5)

    def test_giant_component_everything(self):
        g = GlpGenerator().generate(500, seed=5)
        assert giant_component(g).num_nodes >= 0.99 * g.num_nodes


class TestPfp:
    def test_exact_size(self):
        assert PfpGenerator().generate(400, seed=1).num_nodes == 400

    def test_connected(self):
        assert is_connected(PfpGenerator().generate(400, seed=2))

    def test_heavy_tail(self):
        g = PfpGenerator().generate(3000, seed=3)
        fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=100)
        assert 1.9 < fit.gamma < 2.6

    def test_rich_hub_dominance(self):
        g = PfpGenerator().generate(2000, seed=4)
        assert g.max_degree > 0.05 * g.num_nodes

    def test_disassortative(self):
        from repro.graph import degree_assortativity

        g = PfpGenerator().generate(2000, seed=5)
        assert degree_assortativity(g) < -0.1

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            PfpGenerator(p=0.8, q=0.3)
        with pytest.raises(ValueError):
            PfpGenerator(delta=-0.1)

    def test_delta_zero_is_linear_preference(self):
        gen = PfpGenerator(delta=0.0)
        assert gen._preference(10) == pytest.approx(10.0)

    def test_preference_superlinear(self):
        gen = PfpGenerator(delta=0.048)
        assert gen._preference(100) > 100.0
        assert gen._preference(0) == 0.0
