"""Tests for the extension generators (WS, fitness, BRITE)."""

import pytest

from repro.generators import (
    BarabasiAlbertGenerator,
    BianconiBarabasiGenerator,
    BriteGenerator,
    WattsStrogatzGenerator,
)
from repro.graph import (
    average_clustering,
    average_path_length,
    degree_assortativity,
    giant_component,
    is_connected,
)
from repro.stats import fit_powerlaw_auto_xmin


class TestWattsStrogatz:
    def test_size_and_edges_conserved(self):
        g = WattsStrogatzGenerator(k=4, p=0.1).generate(200, seed=1)
        assert g.num_nodes == 200
        assert g.num_edges == 400  # rewiring never changes the count

    def test_p_zero_is_lattice(self):
        g = WattsStrogatzGenerator(k=4, p=0.0).generate(100, seed=2)
        assert all(d == 4 for d in g.degrees().values())
        # Ring lattice of k=4 has clustering 1/2.
        assert average_clustering(g) == pytest.approx(0.5)

    def test_small_p_small_world(self):
        lattice = WattsStrogatzGenerator(k=4, p=0.0).generate(300, seed=3)
        rewired = WattsStrogatzGenerator(k=4, p=0.1).generate(300, seed=3)
        assert average_path_length(giant_component(rewired)) < average_path_length(
            lattice
        )
        assert average_clustering(rewired) > 0.2  # clustering largely survives

    def test_p_one_destroys_clustering(self):
        g = WattsStrogatzGenerator(k=4, p=1.0).generate(400, seed=4)
        assert average_clustering(g) < 0.1

    def test_no_heavy_tail(self):
        g = WattsStrogatzGenerator(k=4, p=0.3).generate(600, seed=5)
        assert g.max_degree < 15

    def test_validation(self):
        with pytest.raises(ValueError):
            WattsStrogatzGenerator(k=3)  # odd
        with pytest.raises(ValueError):
            WattsStrogatzGenerator(k=0)
        with pytest.raises(ValueError):
            WattsStrogatzGenerator(p=1.5)


class TestBianconiBarabasi:
    def test_size(self):
        assert BianconiBarabasiGenerator(m=2).generate(300, seed=1).num_nodes == 300

    def test_connected(self):
        assert is_connected(BianconiBarabasiGenerator(m=1).generate(200, seed=2))

    def test_heavy_tail(self):
        g = BianconiBarabasiGenerator(m=2).generate(3000, seed=3)
        fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=100)
        assert 1.9 < fit.gamma < 3.2

    def test_constant_fitness_reduces_to_ba_statistics(self):
        # With a delta-distributed fitness the attachment kernel is plain
        # degree preference; hub sizes should match BA within noise.
        bb = BianconiBarabasiGenerator(m=2, fitness=lambda rng: 1.0)
        ba = BarabasiAlbertGenerator(m=2)
        bb_max = sum(bb.generate(800, seed=s).max_degree for s in range(5)) / 5
        ba_max = sum(ba.generate(800, seed=s).max_degree for s in range(5)) / 5
        assert bb_max == pytest.approx(ba_max, rel=0.4)

    def test_fit_young_nodes_can_win(self):
        # With extreme fitness spread, the top node is often NOT among the
        # very first arrivals (impossible in plain BA at this size).
        import random

        wins = 0
        for seed in range(8):
            gen = BianconiBarabasiGenerator(
                m=2, fitness=lambda rng: 0.01 + rng.random() ** 6
            )
            g = gen.generate(400, seed=seed)
            top = max(g.nodes(), key=g.degree)
            if top >= 10:
                wins += 1
        assert wins >= 2

    def test_nonpositive_fitness_rejected(self):
        gen = BianconiBarabasiGenerator(m=1, fitness=lambda rng: 0.0)
        with pytest.raises(ValueError):
            gen.generate(50, seed=1)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            BianconiBarabasiGenerator(m=0)


class TestBrite:
    def test_size_and_edges(self):
        g = BriteGenerator(m=2).generate(300, seed=1)
        assert g.num_nodes == 300
        assert g.num_edges == 3 + (300 - 3) * 2

    def test_connected(self):
        assert is_connected(BriteGenerator(m=1).generate(200, seed=2))

    def test_geometry_off_is_ba_like(self):
        g = BriteGenerator(m=2, geometry=False).generate(2500, seed=3)
        fit = fit_powerlaw_auto_xmin(list(g.degrees().values()), min_tail=100)
        assert fit.gamma == pytest.approx(3.0, abs=0.6)

    def test_geometry_localizes_links(self):
        # Strong distance penalty caps hub growth relative to pure BA.
        local = BriteGenerator(m=2, alpha=0.02).generate(800, seed=4)
        free = BriteGenerator(m=2, geometry=False).generate(800, seed=4)
        assert local.max_degree < free.max_degree

    def test_fractal_placement_runs(self):
        g = BriteGenerator(m=2, fractal_dimension=1.5).generate(200, seed=5)
        assert g.num_nodes == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            BriteGenerator(m=0)
        with pytest.raises(ValueError):
            BriteGenerator(alpha=0.0)
        with pytest.raises(ValueError):
            BriteGenerator(fractal_dimension=2.5)
