"""Tests for Erdős–Rényi baselines."""

import pytest

from repro.generators import ErdosRenyiGnm, ErdosRenyiGnp, GenerationError
from repro.graph import average_clustering


class TestGnp:
    def test_expected_edge_count(self):
        n, p = 400, 0.02
        g = ErdosRenyiGnp(p=p).generate(n, seed=1)
        expected = p * n * (n - 1) / 2
        assert g.num_edges == pytest.approx(expected, rel=0.15)

    def test_p_zero_empty(self):
        g = ErdosRenyiGnp(p=0.0).generate(50, seed=2)
        assert g.num_edges == 0
        assert g.num_nodes == 50

    def test_p_one_complete(self):
        g = ErdosRenyiGnp(p=1.0).generate(20, seed=3)
        assert g.num_edges == 190

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            ErdosRenyiGnp(p=1.5)
        with pytest.raises(ValueError):
            ErdosRenyiGnp(p=-0.1)

    def test_poisson_like_degrees(self):
        # Max degree should stay near the mean, unlike heavy-tail models.
        g = ErdosRenyiGnp(p=0.01).generate(600, seed=4)
        assert g.max_degree < 6 * max(g.average_degree, 1)

    def test_low_clustering(self):
        g = ErdosRenyiGnp(p=0.01).generate(600, seed=5)
        assert average_clustering(g) < 0.05


class TestGnm:
    def test_exact_edge_count(self):
        g = ErdosRenyiGnm(m=777).generate(300, seed=6)
        assert g.num_edges == 777

    def test_zero_edges(self):
        assert ErdosRenyiGnm(m=0).generate(10, seed=7).num_edges == 0

    def test_too_many_edges_rejected(self):
        with pytest.raises(GenerationError):
            ErdosRenyiGnm(m=100).generate(5, seed=8)

    def test_negative_m_rejected(self):
        with pytest.raises(ValueError):
            ErdosRenyiGnm(m=-1)

    def test_all_edges_distinct(self):
        g = ErdosRenyiGnm(m=190).generate(20, seed=9)
        assert g.num_edges == 190  # complete graph reached by rejection
