"""Tests for correlation measures."""

import pytest

from repro.stats import pearson_correlation, rank_values, spearman_correlation


class TestPearson:
    def test_perfect_linear(self):
        xs = [1, 2, 3, 4]
        ys = [2, 4, 6, 8]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_side_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_numpy(self):
        import numpy as np

        rng = np.random.default_rng(1)
        xs = rng.random(50).tolist()
        ys = (np.asarray(xs) * 2 + rng.random(50)).tolist()
        ours = pearson_correlation(xs, ys)
        theirs = float(np.corrcoef(xs, ys)[0, 1])
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2])


class TestRanks:
    def test_simple(self):
        assert rank_values([10, 30, 20]) == [1.0, 3.0, 2.0]

    def test_ties_averaged(self):
        assert rank_values([5, 5, 7]) == [1.5, 1.5, 3.0]

    def test_all_equal(self):
        assert rank_values([2, 2, 2, 2]) == [2.5, 2.5, 2.5, 2.5]

    def test_empty(self):
        assert rank_values([]) == []


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [x**3 for x in xs]
        assert spearman_correlation(xs, ys) == pytest.approx(1.0)

    def test_against_scipy(self):
        import numpy as np
        from scipy import stats as scipy_stats

        rng = np.random.default_rng(2)
        xs = rng.random(80).tolist()
        ys = rng.random(80).tolist()
        ours = spearman_correlation(xs, ys)
        theirs = scipy_stats.spearmanr(xs, ys).statistic
        assert ours == pytest.approx(float(theirs), abs=1e-10)

    def test_against_scipy_with_ties(self):
        from scipy import stats as scipy_stats

        xs = [1, 2, 2, 3, 3, 3, 4]
        ys = [5, 5, 6, 7, 8, 8, 9]
        ours = spearman_correlation(xs, ys)
        theirs = scipy_stats.spearmanr(xs, ys).statistic
        assert ours == pytest.approx(float(theirs), abs=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            spearman_correlation([1], [2])
