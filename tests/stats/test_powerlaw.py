"""Tests for repro.stats.powerlaw — fitters recover known exponents."""

import math

import numpy as np
import pytest

from repro.stats.powerlaw import (
    bootstrap_gamma,
    fit_discrete_powerlaw,
    fit_powerlaw_auto_xmin,
    hill_estimator,
    sample_discrete_powerlaw,
)


class TestSampling:
    def test_respects_x_min(self):
        samples = sample_discrete_powerlaw(2.5, 1000, x_min=3, seed=1)
        assert min(samples) >= 3

    def test_respects_x_max(self):
        samples = sample_discrete_powerlaw(2.0, 1000, x_min=1, x_max=50, seed=2)
        assert max(samples) <= 50

    def test_size(self):
        assert len(sample_discrete_powerlaw(2.2, 257, seed=3)) == 257

    def test_seeded_reproducible(self):
        a = sample_discrete_powerlaw(2.2, 100, seed=4)
        b = sample_discrete_powerlaw(2.2, 100, seed=4)
        assert a == b

    def test_gamma_below_one_rejected(self):
        with pytest.raises(ValueError):
            sample_discrete_powerlaw(0.9, 10)

    def test_bad_x_min_rejected(self):
        with pytest.raises(ValueError):
            sample_discrete_powerlaw(2.0, 10, x_min=0)

    def test_heavier_tail_for_smaller_gamma(self):
        light = sample_discrete_powerlaw(3.5, 5000, seed=5)
        heavy = sample_discrete_powerlaw(1.8, 5000, seed=5)
        assert max(heavy) > max(light)


class TestFixedXminFit:
    @pytest.mark.parametrize("gamma", [1.8, 2.2, 2.8])
    def test_recovers_exponent(self, gamma):
        samples = sample_discrete_powerlaw(gamma, 20_000, x_min=1, seed=7)
        fit = fit_discrete_powerlaw(samples, x_min=2)
        assert fit.gamma == pytest.approx(gamma, abs=0.1)

    def test_sigma_shrinks_with_sample_size(self):
        small = fit_discrete_powerlaw(
            sample_discrete_powerlaw(2.2, 500, seed=8), x_min=1
        )
        large = fit_discrete_powerlaw(
            sample_discrete_powerlaw(2.2, 50_000, seed=8), x_min=1
        )
        assert large.sigma < small.sigma

    def test_ks_small_for_true_powerlaw(self):
        samples = sample_discrete_powerlaw(2.2, 20_000, x_min=1, seed=9)
        fit = fit_discrete_powerlaw(samples, x_min=1)
        assert fit.ks < 0.02

    def test_n_tail_counts_correctly(self):
        samples = [1, 1, 2, 3, 5, 8]
        fit = fit_discrete_powerlaw(samples, x_min=2)
        assert fit.n_tail == 4

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_discrete_powerlaw([5], x_min=1)

    def test_bad_x_min_rejected(self):
        with pytest.raises(ValueError):
            fit_discrete_powerlaw([1, 2, 3], x_min=0)

    def test_str_mentions_gamma(self):
        samples = sample_discrete_powerlaw(2.2, 1000, seed=10)
        assert "gamma=" in str(fit_discrete_powerlaw(samples, x_min=1))


class TestAutoXmin:
    def test_recovers_exponent_with_contaminated_head(self):
        # Power law body + a non-power-law bump at low values.
        samples = sample_discrete_powerlaw(2.3, 10_000, x_min=5, seed=11)
        samples += [1, 2, 2, 3, 3, 3] * 500
        fit = fit_powerlaw_auto_xmin(samples, min_tail=200)
        assert fit.gamma == pytest.approx(2.3, abs=0.2)
        assert fit.x_min >= 3

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_powerlaw_auto_xmin([1, 2, 3], min_tail=50)

    def test_explicit_candidates(self):
        samples = sample_discrete_powerlaw(2.2, 5_000, seed=12)
        fit = fit_powerlaw_auto_xmin(samples, x_min_candidates=[1, 2], min_tail=50)
        assert fit.x_min in (1, 2)


class TestHill:
    def test_recovers_exponent(self):
        samples = sample_discrete_powerlaw(2.2, 50_000, x_min=1, seed=13)
        assert hill_estimator(samples, tail_fraction=0.05) == pytest.approx(2.2, abs=0.3)

    def test_agrees_with_mle(self):
        samples = sample_discrete_powerlaw(2.5, 30_000, x_min=1, seed=14)
        mle = fit_discrete_powerlaw(samples, x_min=3).gamma
        hill = hill_estimator(samples, tail_fraction=0.05)
        assert abs(mle - hill) < 0.35

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            hill_estimator([1, 2, 3], tail_fraction=0.0)

    def test_tiny_sample_rejected(self):
        with pytest.raises(ValueError):
            hill_estimator([1.0], tail_fraction=0.5)


class TestPlausibility:
    def test_true_powerlaw_plausible(self):
        from repro.stats.powerlaw import powerlaw_plausibility

        samples = sample_discrete_powerlaw(2.3, 600, x_min=1, seed=30)
        p = powerlaw_plausibility(samples, n_boot=15, seed=31)
        assert p >= 0.1  # CSN: do not reject

    def test_poisson_rejected(self):
        import numpy as np

        from repro.stats.powerlaw import powerlaw_plausibility

        rng = np.random.default_rng(32)
        samples = (rng.poisson(8, 600) + 1).tolist()
        # Constrain the fit to a substantial tail: letting x_min retreat to
        # the last few dozen points makes any distribution locally
        # power-law-ish (small-sample caveat CSN discuss).
        fit = fit_powerlaw_auto_xmin(samples, min_tail=200)
        p = powerlaw_plausibility(samples, fit=fit, n_boot=15, seed=33)
        assert p < 0.1  # CSN: reject the power law

    def test_reproducible(self):
        from repro.stats.powerlaw import powerlaw_plausibility

        samples = sample_discrete_powerlaw(2.2, 300, seed=34)
        a = powerlaw_plausibility(samples, n_boot=8, seed=35)
        b = powerlaw_plausibility(samples, n_boot=8, seed=35)
        assert a == b

    def test_validation(self):
        from repro.stats.powerlaw import powerlaw_plausibility

        with pytest.raises(ValueError):
            powerlaw_plausibility([1, 2, 3], n_boot=5)
        samples = sample_discrete_powerlaw(2.2, 300, seed=36)
        with pytest.raises(ValueError):
            powerlaw_plausibility(samples, n_boot=0)

    def test_accepts_precomputed_fit(self):
        from repro.stats.powerlaw import powerlaw_plausibility

        samples = sample_discrete_powerlaw(2.2, 400, seed=37)
        fit = fit_powerlaw_auto_xmin(samples, min_tail=50)
        p = powerlaw_plausibility(samples, fit=fit, n_boot=8, seed=38)
        assert 0.0 <= p <= 1.0


class TestBootstrap:
    def test_mean_near_point_estimate(self):
        samples = sample_discrete_powerlaw(2.2, 3_000, seed=15)
        point = fit_discrete_powerlaw(samples, x_min=2).gamma
        mean, std = bootstrap_gamma(samples, x_min=2, n_boot=30, seed=16)
        assert mean == pytest.approx(point, abs=3 * std + 0.05)

    def test_std_positive(self):
        samples = sample_discrete_powerlaw(2.2, 2_000, seed=17)
        _, std = bootstrap_gamma(samples, x_min=1, n_boot=20, seed=18)
        assert std > 0

    def test_reproducible(self):
        samples = sample_discrete_powerlaw(2.2, 1_000, seed=19)
        assert bootstrap_gamma(samples, 1, n_boot=10, seed=20) == bootstrap_gamma(
            samples, 1, n_boot=10, seed=20
        )
