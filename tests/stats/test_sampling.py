"""Tests for repro.stats.sampling — including hypothesis property tests."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.stats.sampling import (
    AliasSampler,
    CumulativeSampler,
    FenwickSampler,
    distinct_in_order,
    weighted_choice,
)


class TestFenwickBasics:
    def test_empty_sampler_has_zero_total(self):
        assert FenwickSampler().total == 0.0

    def test_append_returns_indices_in_order(self):
        s = FenwickSampler()
        assert [s.append(1.0), s.append(2.0), s.append(3.0)] == [0, 1, 2]

    def test_total_is_sum_of_weights(self):
        s = FenwickSampler([1.0, 2.5, 3.5])
        assert s.total == pytest.approx(7.0)

    def test_weight_readback(self):
        s = FenwickSampler([4.0, 5.0])
        assert s.weight(0) == 4.0
        assert s.weight(1) == 5.0

    def test_update_changes_total(self):
        s = FenwickSampler([1.0, 1.0])
        s.update(0, 10.0)
        assert s.total == pytest.approx(11.0)
        assert s.weight(0) == 10.0

    def test_add_delta(self):
        s = FenwickSampler([2.0])
        s.add(0, 3.0)
        assert s.weight(0) == pytest.approx(5.0)

    def test_negative_weight_rejected(self):
        s = FenwickSampler([1.0])
        with pytest.raises(ValueError):
            s.update(0, -1.0)
        with pytest.raises(ValueError):
            s.append(-2.0)

    def test_add_below_zero_rejected(self):
        s = FenwickSampler([1.0])
        with pytest.raises(ValueError):
            s.add(0, -2.0)

    def test_out_of_range_index_rejected(self):
        s = FenwickSampler([1.0])
        with pytest.raises(IndexError):
            s.add(5, 1.0)

    def test_sample_from_all_zero_rejected(self):
        s = FenwickSampler([0.0, 0.0])
        with pytest.raises(ValueError):
            s.sample()


class TestFenwickSampling:
    def test_single_positive_item_always_selected(self):
        s = FenwickSampler([0.0, 7.0, 0.0], seed=1)
        assert all(s.sample() == 1 for _ in range(50))

    def test_zero_weight_items_never_selected(self):
        s = FenwickSampler([1.0, 0.0, 1.0], seed=2)
        draws = {s.sample() for _ in range(500)}
        assert 1 not in draws

    def test_frequencies_match_weights(self):
        weights = [1.0, 2.0, 3.0, 4.0]
        s = FenwickSampler(weights, seed=3)
        counts = [0] * 4
        n = 40_000
        for _ in range(n):
            counts[s.sample()] += 1
        for i, w in enumerate(weights):
            assert counts[i] / n == pytest.approx(w / 10.0, abs=0.02)

    def test_frequencies_after_dynamic_update(self):
        s = FenwickSampler([1.0, 1.0], seed=4)
        s.update(0, 9.0)
        n = 20_000
        hits = sum(1 for _ in range(n) if s.sample() == 0)
        assert hits / n == pytest.approx(0.9, abs=0.02)

    def test_sample_distinct_returns_requested_count(self):
        s = FenwickSampler([1.0] * 10, seed=5)
        picks = s.sample_distinct(4)
        assert len(picks) == 4
        assert len(set(picks)) == 4

    def test_sample_distinct_too_many_rejected(self):
        s = FenwickSampler([1.0, 0.0], seed=6)
        with pytest.raises(ValueError):
            s.sample_distinct(2)

    def test_seeded_reproducibility(self):
        a = FenwickSampler([1.0, 2.0, 3.0], seed=7)
        b = FenwickSampler([1.0, 2.0, 3.0], seed=7)
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_total_always_matches_weight_sum(self, weights):
        s = FenwickSampler(weights)
        assert s.total == pytest.approx(sum(weights), rel=1e-9, abs=1e-9)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_sample_always_returns_positive_weight_index(self, weights, seed):
        s = FenwickSampler(weights, seed=seed)
        idx = s.sample()
        assert 0 <= idx < len(weights)
        assert s.weight(idx) > 0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_interleaved_updates_keep_prefix_sums_consistent(self, data):
        n = data.draw(st.integers(min_value=1, max_value=20))
        s = FenwickSampler([1.0] * n)
        mirror = [1.0] * n
        for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
            idx = data.draw(st.integers(min_value=0, max_value=n - 1))
            w = data.draw(st.floats(min_value=0.0, max_value=10.0))
            s.update(idx, w)
            mirror[idx] = w
        assert s.total == pytest.approx(sum(mirror), abs=1e-9)
        for i in range(n):
            assert s.weight(i) == pytest.approx(mirror[i])


class TestAliasSampler:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasSampler([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_single_item(self):
        s = AliasSampler([5.0], seed=1)
        assert all(s.sample() == 0 for _ in range(20))

    def test_frequencies_match_weights(self):
        weights = [5.0, 1.0, 4.0]
        s = AliasSampler(weights, seed=2)
        counts = [0] * 3
        n = 40_000
        for _ in range(n):
            counts[s.sample()] += 1
        for i, w in enumerate(weights):
            assert counts[i] / n == pytest.approx(w / 10.0, abs=0.02)

    def test_zero_weight_never_drawn(self):
        s = AliasSampler([1.0, 0.0, 1.0], seed=3)
        assert 1 not in {s.sample() for _ in range(2000)}

    def test_sample_many_length(self):
        s = AliasSampler([1.0, 1.0], seed=4)
        assert len(s.sample_many(17)) == 17

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_in_range(self, weights):
        s = AliasSampler(weights, seed=0)
        for _ in range(10):
            assert 0 <= s.sample() < len(weights)


class TestWeightedChoice:
    def test_matches_distribution(self):
        rng = random.Random(1)
        n = 20_000
        hits = sum(1 for _ in range(n) if weighted_choice([1.0, 3.0], rng) == 1)
        assert hits / n == pytest.approx(0.75, abs=0.02)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice([0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            weighted_choice([1.0, -0.5], random.Random(0))

    def test_single_item(self):
        assert weighted_choice([2.0], random.Random(0)) == 0


class TestFenwickBulkBuild:
    """The O(n) constructor must be indistinguishable from append-building."""

    @given(
        st.lists(
            st.integers(min_value=0, max_value=40).map(lambda k: k * 0.25),
            min_size=1,
            max_size=60,
        ).filter(lambda ws: sum(ws) > 0)
    )
    @settings(max_examples=60, deadline=None)
    def test_bulk_matches_appends(self, weights):
        # Multiples of 0.25 are exactly representable, so the one-pass fold
        # and the incremental appends produce bit-equal trees.
        bulk = FenwickSampler(weights, seed=9)
        grown = FenwickSampler(seed=9)
        for w in weights:
            grown.append(w)
        assert bulk.total == grown.total
        assert [bulk.weight(i) for i in range(len(bulk))] == [
            grown.weight(i) for i in range(len(grown))
        ]
        assert [bulk.sample() for _ in range(30)] == [
            grown.sample() for _ in range(30)
        ]

    def test_bulk_build_tracks_positive_count(self):
        sampler = FenwickSampler([0.0, 2.0, 0.0, 1.0])
        assert sampler.sample_distinct(2) == [1, 3]
        with pytest.raises(ValueError):
            sampler.sample_distinct(3)

    def test_bulk_build_rejects_negative(self):
        with pytest.raises(ValueError):
            FenwickSampler([1.0, -0.5])


class TestCumulativeSampler:
    def test_draw_distribution(self):
        sampler = CumulativeSampler([1.0, 0.0, 3.0])
        rng = np.random.default_rng(4)
        draws = sampler.draw(4000, rng)
        counts = np.bincount(draws, minlength=3)
        assert counts[1] == 0
        assert counts[2] / counts[0] == pytest.approx(3.0, rel=0.2)

    def test_draw_matches_scalar_stream(self):
        # One batched searchsorted must consume uniforms exactly like
        # sequential scalar draws (numpy generators are chunk-invariant).
        weights = [0.5, 2.0, 1.5, 0.0, 4.0]
        sampler = CumulativeSampler(weights)
        batched = sampler.draw(64, np.random.default_rng(11)).tolist()
        rng = np.random.default_rng(11)
        scalar = [int(sampler.draw(1, rng)[0]) for _ in range(64)]
        assert batched == scalar

    def test_append_and_add_many(self):
        sampler = CumulativeSampler()
        for w in (1.0, 2.0):
            sampler.append(w)
        sampler.add_many([0, 0, 1], [1.0, 1.0, 3.0])
        assert sampler.weight(0) == pytest.approx(3.0)
        assert sampler.weight(1) == pytest.approx(5.0)
        assert sampler.total == pytest.approx(8.0)

    def test_draw_distinct_excludes(self):
        sampler = CumulativeSampler([1.0, 1.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        chosen = sampler.draw_distinct(3, rng, exclude=(2,)).tolist()
        assert len(set(chosen)) == 3 and 2 not in chosen

    def test_draw_distinct_infeasible(self):
        sampler = CumulativeSampler([1.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            sampler.draw_distinct(3, np.random.default_rng(0))

    def test_zero_total_rejected(self):
        sampler = CumulativeSampler([0.0, 0.0])
        with pytest.raises(ValueError):
            sampler.draw(1, np.random.default_rng(0))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CumulativeSampler([1.0, -1.0])


class TestDistinctInOrder:
    def test_preserves_first_appearance_order(self):
        assert distinct_in_order([3, 1, 3, 2, 1, 5], 3) == [3, 1, 2]

    def test_respects_exclude(self):
        assert distinct_in_order([3, 1, 2], 2, exclude=(3,)) == [1, 2]

    def test_short_block_returns_partial(self):
        assert distinct_in_order([4, 4, 4], 2) == [4]
