"""Tests for repro.stats.distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import (
    binned_spectrum,
    empirical_ccdf,
    frequency_counts,
    histogram,
    ks_distance,
    log_bin_centers,
    log_binned_histogram,
)


class TestCcdf:
    def test_starts_at_one(self):
        ccdf = empirical_ccdf([3, 1, 2])
        assert ccdf.probabilities[0] == 1.0

    def test_values_sorted_distinct(self):
        ccdf = empirical_ccdf([5, 1, 5, 3, 3])
        assert ccdf.values == (1, 3, 5)

    def test_tail_probabilities(self):
        ccdf = empirical_ccdf([1, 2, 3, 4])
        assert ccdf.probabilities == (1.0, 0.75, 0.5, 0.25)

    def test_ties_merge(self):
        ccdf = empirical_ccdf([2, 2, 2])
        assert ccdf.values == (2,)
        assert ccdf.probabilities == (1.0,)

    def test_at_interpolates_tail(self):
        ccdf = empirical_ccdf([1, 2, 3, 4])
        assert ccdf.at(2.5) == 0.5  # P(X >= 2.5) = P(X >= 3)
        assert ccdf.at(0) == 1.0
        assert ccdf.at(100) == 0.0

    def test_at_exact_value(self):
        ccdf = empirical_ccdf([1, 2, 3, 4])
        assert ccdf.at(2) == 0.75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_ccdf([])

    def test_as_points_matches(self):
        ccdf = empirical_ccdf([1, 2])
        assert ccdf.as_points() == [(1, 1.0), (2, 0.5)]

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_monotone_decreasing(self, samples):
        ccdf = empirical_ccdf(samples)
        probs = ccdf.probabilities
        assert all(probs[i] > probs[i + 1] for i in range(len(probs) - 1))
        assert all(0 < p <= 1 for p in probs)


class TestLogBinning:
    def test_centers_are_geometric(self):
        centers = log_bin_centers(1.0, 100.0, bins_per_decade=1)
        ratios = [centers[i + 1] / centers[i] for i in range(len(centers) - 1)]
        assert all(r == pytest.approx(10.0) for r in ratios)

    def test_centers_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_bin_centers(0.0, 10.0)

    def test_histogram_density_normalizes(self):
        rng = np.random.default_rng(1)
        samples = rng.pareto(1.5, size=5000) + 1.0
        points = log_binned_histogram(samples, bins_per_decade=8)
        # Total mass recovered from density * bin width should be ~1.
        ratio = 10 ** (1.0 / 8)
        mass = 0.0
        x_min = min(samples)
        for center, density in points:
            left = center / math.sqrt(ratio)
            right = center * math.sqrt(ratio)
            mass += density * (right - left)
        assert mass == pytest.approx(1.0, abs=0.1)

    def test_histogram_rejects_no_positive(self):
        with pytest.raises(ValueError):
            log_binned_histogram([0, -1])

    def test_histogram_recovers_powerlaw_slope(self):
        rng = np.random.default_rng(2)
        samples = (rng.pareto(1.3, size=20000) + 1.0)
        points = log_binned_histogram(samples, bins_per_decade=5)
        xs = np.log([p[0] for p in points[:10]])
        ys = np.log([p[1] for p in points[:10]])
        slope = np.polyfit(xs, ys, 1)[0]
        assert slope == pytest.approx(-2.3, abs=0.35)


class TestBinnedSpectrum:
    def test_exact_bins_average(self):
        pairs = [(2, 0.5), (2, 1.5), (4, 3.0)]
        spectrum = binned_spectrum(pairs, log_bins=False)
        assert spectrum == [(2, 1.0), (4, 3.0)]

    def test_empty_input(self):
        assert binned_spectrum([]) == []

    def test_nonpositive_x_dropped(self):
        assert binned_spectrum([(0, 1.0), (-1, 2.0)]) == []

    def test_log_bins_merge_close_x(self):
        pairs = [(10, 1.0), (10.5, 3.0), (1000, 5.0)]
        spectrum = binned_spectrum(pairs, log_bins=True, bins_per_decade=2)
        assert len(spectrum) == 2
        assert spectrum[0][1] == pytest.approx(2.0)

    def test_log_bin_x_is_geometric_mean(self):
        pairs = [(10, 1.0), (10, 1.0)]
        spectrum = binned_spectrum(pairs, log_bins=True)
        assert spectrum[0][0] == pytest.approx(10.0)


class TestKsDistance:
    def test_identical_samples_zero(self):
        assert ks_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1, 1, 1], [2, 2, 2]) == 1.0

    def test_symmetry(self):
        a, b = [1, 2, 3, 4], [2, 3, 5]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1])

    def test_against_scipy(self):
        from scipy import stats as scipy_stats

        rng = np.random.default_rng(3)
        a = rng.normal(size=200)
        b = rng.normal(0.5, size=300)
        ours = ks_distance(a, b)
        theirs = scipy_stats.ks_2samp(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)


class TestHistogramAndCounts:
    def test_histogram_counts_sum(self):
        data = [1, 2, 2, 3, 9]
        points = histogram(data, bins=4)
        assert sum(c for _, c in points) == len(data)

    def test_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_frequency_counts(self):
        assert frequency_counts([1, 1, 2]) == {1: 2, 2: 1}

    def test_frequency_counts_empty(self):
        assert frequency_counts([]) == {}
