"""Tests for Gini and Lorenz."""

import pytest

from repro.stats import gini_coefficient, lorenz_curve


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_total_concentration(self):
        n = 100
        values = [0] * (n - 1) + [10]
        assert gini_coefficient(values) == pytest.approx(1.0 - 1.0 / n)

    def test_known_value(self):
        # For [1, 2, 3]: G = (2*(1+4+9)/(3*6)) - 4/3 = 28/18 - 24/18 = 2/9.
        assert gini_coefficient([1, 2, 3]) == pytest.approx(2.0 / 9.0)

    def test_scale_invariant(self):
        values = [1, 4, 2, 9]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([10 * v for v in values])
        )

    def test_all_zero_is_equal(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient([])
        with pytest.raises(ValueError):
            gini_coefficient([1, -1])

    def test_degree_inequality_heavy_vs_flat(self):
        from repro.generators import ErdosRenyiGnm, PfpGenerator

        heavy = PfpGenerator().generate(500, seed=1)
        flat = ErdosRenyiGnm(m=heavy.num_edges).generate(500, seed=1)
        heavy_gini = gini_coefficient(heavy.degrees().values())
        flat_gini = gini_coefficient(flat.degrees().values())
        assert heavy_gini > flat_gini + 0.15


class TestLorenz:
    def test_endpoints(self):
        curve = lorenz_curve([1, 2, 3, 4])
        assert curve[0] == (0.0, 0.0)
        assert curve[-1] == (1.0, pytest.approx(1.0))

    def test_below_diagonal(self):
        curve = lorenz_curve([1, 1, 1, 10])
        assert all(y <= x + 1e-9 for x, y in curve)

    def test_equality_is_diagonal(self):
        curve = lorenz_curve([3, 3, 3], points=5)
        for x, y in curve:
            assert y == pytest.approx(x, abs=0.2)

    def test_monotone(self):
        curve = lorenz_curve([5, 1, 9, 2, 2], points=11)
        ys = [y for _, y in curve]
        assert all(ys[i] <= ys[i + 1] + 1e-12 for i in range(len(ys) - 1))

    def test_all_zero_diagonal(self):
        curve = lorenz_curve([0, 0], points=3)
        assert curve == [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            lorenz_curve([])
        with pytest.raises(ValueError):
            lorenz_curve([1], points=1)
        with pytest.raises(ValueError):
            lorenz_curve([-1, 2])
