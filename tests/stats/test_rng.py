"""Tests for repro.stats.rng."""

import random

import numpy as np
import pytest

from repro.stats.rng import BufferedUniforms, make_numpy_rng, make_rng, spawn_seed


class TestMakeRng:
    def test_none_gives_random_instance(self):
        assert isinstance(make_rng(None), random.Random)

    def test_int_seed_is_reproducible(self):
        a = make_rng(42)
        b = make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_existing_instance_passes_through(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            make_rng("not-a-seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            make_rng(1.5)


class TestMakeNumpyRng:
    def test_none_gives_generator(self):
        assert isinstance(make_numpy_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = make_numpy_rng(42).random(5)
        b = make_numpy_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_existing_generator_passes_through(self):
        gen = np.random.default_rng(3)
        assert make_numpy_rng(gen) is gen

    def test_accepts_numpy_integer(self):
        assert isinstance(make_numpy_rng(np.int64(5)), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            make_numpy_rng("bad")


class TestSpawnSeed:
    def test_deterministic_given_parent_state(self):
        a = spawn_seed(random.Random(1))
        b = spawn_seed(random.Random(1))
        assert a == b

    def test_in_63_bit_range(self):
        rng = random.Random(0)
        for _ in range(100):
            seed = spawn_seed(rng)
            assert 0 <= seed < (1 << 63)

    def test_consecutive_spawns_differ(self):
        rng = random.Random(5)
        seeds = {spawn_seed(rng) for _ in range(50)}
        assert len(seeds) == 50

    def test_child_streams_decorrelated(self):
        # Streams from consecutive spawns should not produce equal leads.
        rng = random.Random(9)
        s1, s2 = spawn_seed(rng), spawn_seed(rng)
        lead1 = random.Random(s1).random()
        lead2 = random.Random(s2).random()
        assert lead1 != lead2


class TestBufferedUniforms:
    def test_values_in_unit_interval(self):
        uniform = BufferedUniforms(make_numpy_rng(7), block=32).next
        values = [uniform() for _ in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_stream_matches_block_refills(self):
        # The buffer must serve exactly the generator's block stream,
        # refilling one block at a time — no skipped or reordered draws.
        buffered = BufferedUniforms(make_numpy_rng(42), block=16)
        served = [buffered.next() for _ in range(40)]
        reference_rng = make_numpy_rng(42)
        reference = list(reference_rng.random(16)) + list(
            reference_rng.random(16)
        ) + list(reference_rng.random(16))
        assert served == reference[:40]

    def test_independent_instances_do_not_share_state(self):
        a = BufferedUniforms(make_numpy_rng(1), block=8)
        b = BufferedUniforms(make_numpy_rng(1), block=8)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]
