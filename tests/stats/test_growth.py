"""Tests for repro.stats.growth — log-space fitters."""

import math

import numpy as np
import pytest

from repro.stats.growth import (
    doubling_time,
    fit_exponential_growth,
    fit_power_scaling,
)


class TestExponentialFit:
    def test_exact_recovery_on_clean_data(self):
        times = list(range(40))
        values = [100 * math.exp(0.05 * t) for t in times]
        fit = fit_exponential_growth(times, values)
        assert fit.rate == pytest.approx(0.05, abs=1e-10)
        assert fit.y0 == pytest.approx(100.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(1)
        times = np.arange(60)
        values = 50 * np.exp(0.03 * times) * np.exp(rng.normal(0, 0.05, 60))
        fit = fit_exponential_growth(times, values)
        assert fit.rate == pytest.approx(0.03, abs=0.005)
        assert fit.rate_stderr > 0

    def test_negative_rate(self):
        times = list(range(20))
        values = [1000 * math.exp(-0.1 * t) for t in times]
        assert fit_exponential_growth(times, values).rate == pytest.approx(-0.1)

    def test_predict_roundtrip(self):
        fit = fit_exponential_growth([0, 1, 2], [2.0, 2.2, 2.42])
        assert fit.predict(0) == pytest.approx(fit.y0)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            fit_exponential_growth([0, 1], [1.0, 0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_exponential_growth([0, 1], [1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_exponential_growth([0], [1.0])

    def test_rejects_constant_times(self):
        with pytest.raises(ValueError):
            fit_exponential_growth([1, 1, 1], [1.0, 2.0, 3.0])

    def test_str_contains_rate(self):
        fit = fit_exponential_growth([0, 1, 2], [1.0, 2.0, 4.0])
        assert "rate=" in str(fit)


class TestPowerFit:
    def test_exact_recovery(self):
        xs = [10, 100, 1000, 10000]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_scaling(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-10)
        assert fit.c == pytest.approx(3.0, rel=1e-9)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(2)
        xs = np.logspace(1, 4, 25)
        ys = 2 * xs**2.07 * np.exp(rng.normal(0, 0.1, 25))
        fit = fit_power_scaling(xs, ys)
        assert fit.exponent == pytest.approx(2.07, abs=0.1)

    def test_rejects_nonpositive_coordinates(self):
        with pytest.raises(ValueError):
            fit_power_scaling([1, 0], [1, 2])
        with pytest.raises(ValueError):
            fit_power_scaling([1, 2], [1, -2])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_scaling([1, 2, 3], [1, 2])

    def test_stderr_zero_for_two_points(self):
        fit = fit_power_scaling([1, 10], [1, 100])
        assert fit.exponent_stderr == 0.0

    def test_predict(self):
        fit = fit_power_scaling([1, 10, 100], [2, 20, 200])
        assert fit.predict(1000) == pytest.approx(2000.0, rel=1e-6)


class TestDoublingTime:
    def test_value(self):
        assert doubling_time(math.log(2.0)) == pytest.approx(1.0)

    def test_internet_host_rate(self):
        # alpha = 0.036/month doubles in ~19 months.
        assert doubling_time(0.036) == pytest.approx(19.25, abs=0.1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            doubling_time(0.0)
