"""Tests for the frozen reference AS map."""

import math

import pytest

from repro.core import summarize
from repro.datasets import (
    PUBLISHED_AS_MAP_TARGETS,
    REFERENCE_EXPECTED,
    reference_as_map,
    reference_generator,
)
from repro.graph import is_connected


@pytest.fixture(scope="module")
def ref():
    return reference_as_map(1500)


@pytest.fixture(scope="module")
def ref_summary(ref):
    return summarize(ref, seed=0)


class TestReferenceMap:
    def test_cached_identity(self):
        assert reference_as_map(1500) is reference_as_map(1500)

    def test_connected(self, ref):
        assert is_connected(ref)

    def test_named_by_size(self, ref):
        assert ref.name == "reference-as-map-1500"

    def test_deterministic_across_generator_calls(self):
        a = reference_generator().generate(400, seed=20010515)
        b = reference_generator().generate(400, seed=20010515)
        assert {frozenset(e) for e in a.edges()} == {frozenset(e) for e in b.edges()}

    def test_heavy_tail(self, ref_summary):
        assert not math.isnan(ref_summary.degree_exponent)
        assert 1.8 < ref_summary.degree_exponent < 2.6

    def test_small_world(self, ref_summary):
        assert ref_summary.average_path_length < 5.0

    def test_disassortative(self, ref_summary):
        assert ref_summary.assortativity < -0.05

    def test_clustered(self, ref_summary):
        assert ref_summary.average_clustering > 0.05

    def test_frozen_expectations_at_n3000(self):
        # The contract the rest of the suite relies on: the n=3000
        # reference stays inside the frozen tolerance windows.
        summary = summarize(reference_as_map(3000), seed=0)
        values = summary.as_dict()
        for metric, (expected, tolerance) in REFERENCE_EXPECTED.items():
            assert abs(values[metric] - expected) <= tolerance, metric

    def test_published_targets_sane(self):
        # Published literature anchors should be roughly consistent with
        # the synthetic reference (they anchor EXPERIMENTS.md readings).
        summary = summarize(reference_as_map(3000), seed=0)
        assert summary.degree_exponent == pytest.approx(
            PUBLISHED_AS_MAP_TARGETS["degree_exponent"], abs=0.4
        )
        assert summary.average_path_length == pytest.approx(
            PUBLISHED_AS_MAP_TARGETS["average_path_length"], abs=1.0
        )
