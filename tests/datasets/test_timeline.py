"""Tests for the synthetic growth timeline."""

import pytest

from repro.datasets import (
    PUBLISHED_RATES,
    PUBLISHED_SCALE,
    TimelineConfig,
    hobbes_like_timeline,
)
from repro.stats import fit_exponential_growth


class TestTimeline:
    def test_three_series(self):
        series = hobbes_like_timeline()
        assert set(series) == {"hosts", "ases", "links"}

    def test_default_span(self):
        series = hobbes_like_timeline()
        assert all(len(s) == 54 for s in series.values())

    def test_reproducible(self):
        a = hobbes_like_timeline()
        b = hobbes_like_timeline()
        for key in a:
            assert a[key].values == b[key].values

    def test_rates_recoverable(self):
        series = hobbes_like_timeline()
        for key, rate in PUBLISHED_RATES.items():
            fit = fit_exponential_growth(series[key].times, series[key].values)
            assert fit.rate == pytest.approx(rate, abs=0.003), key

    def test_rate_ordering_alpha_gt_delta_gt_beta(self):
        series = hobbes_like_timeline()
        fits = {
            key: fit_exponential_growth(s.times, s.values).rate
            for key, s in series.items()
        }
        assert fits["hosts"] > fits["links"] > fits["ases"]

    def test_scales_match_published(self):
        series = hobbes_like_timeline(TimelineConfig(noise_sigma=0.0))
        for key, scale in PUBLISHED_SCALE.items():
            assert series[key].values[0] == pytest.approx(scale, rel=1e-9)

    def test_noise_free_fit_exact(self):
        series = hobbes_like_timeline(TimelineConfig(noise_sigma=0.0))
        fit = fit_exponential_growth(series["hosts"].times, series["hosts"].values)
        assert fit.rate == pytest.approx(PUBLISHED_RATES["hosts"], abs=1e-12)
        assert fit.r_squared == pytest.approx(1.0)

    def test_custom_months(self):
        series = hobbes_like_timeline(TimelineConfig(months=12))
        assert all(len(s) == 12 for s in series.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            hobbes_like_timeline(TimelineConfig(months=2))
        with pytest.raises(ValueError):
            hobbes_like_timeline(TimelineConfig(noise_sigma=-0.1))

    def test_derived_scaling_relation(self):
        # W ∝ N^(alpha/beta): check on the clean series.
        series = hobbes_like_timeline(TimelineConfig(noise_sigma=0.0))
        from repro.stats import fit_power_scaling

        fit = fit_power_scaling(series["ases"].values, series["hosts"].values)
        expected = PUBLISHED_RATES["hosts"] / PUBLISHED_RATES["ases"]
        assert fit.exponent == pytest.approx(expected, abs=1e-6)
