"""Tests for the topology zoo."""

import pytest

from repro.datasets import abilene, karate_club, nsfnet, petersen, zoo
from repro.graph import (
    cycle_counts_3_4_5,
    degree_assortativity,
    diameter,
    is_connected,
    total_triangles,
)


class TestAbilene:
    def test_size(self):
        g = abilene()
        assert g.num_nodes == 11
        assert g.num_edges == 14

    def test_connected(self):
        assert is_connected(abilene())

    def test_diameter(self):
        # Seattle to Atlanta/Washington across the backbone.
        assert diameter(abilene()) == 5

    def test_degrees_bounded(self):
        g = abilene()
        assert g.max_degree == 3  # no PoP has more than 3 links


class TestNsfnet:
    def test_size(self):
        g = nsfnet()
        assert g.num_nodes == 14
        assert g.num_edges == 22

    def test_connected(self):
        assert is_connected(nsfnet())

    def test_every_node_multihomed(self):
        g = nsfnet()
        assert min(g.degrees().values()) >= 2  # the T1 backbone had no spurs


class TestKarate:
    def test_canonical_size(self):
        g = karate_club()
        assert g.num_nodes == 34
        assert g.num_edges == 78

    def test_instructor_and_president_degrees(self):
        g = karate_club()
        assert g.degree(1) == 16   # the instructor
        assert g.degree(34) == 17  # the club president

    def test_triangles(self):
        assert total_triangles(karate_club()) == 45  # published value

    def test_disassortative(self):
        assert degree_assortativity(karate_club()) < -0.4


class TestPetersen:
    def test_three_regular(self):
        g = petersen()
        assert all(d == 3 for d in g.degrees().values())

    def test_girth_five(self):
        counts = cycle_counts_3_4_5(petersen())
        assert counts[3] == 0
        assert counts[4] == 0
        assert counts[5] == 12

    def test_diameter_two(self):
        assert diameter(petersen()) == 2


class TestZoo:
    def test_all_loaders_present(self):
        loaders = zoo()
        assert set(loaders) == {"abilene", "nsfnet", "karate-club", "petersen"}

    def test_fresh_instances(self):
        a = abilene()
        a.add_edge("Seattle", "Atlanta")
        b = abilene()
        assert not b.has_edge("Seattle", "Atlanta")

    def test_names_match(self):
        for name, loader in zoo().items():
            assert loader().name == name
