"""Tests for ASCII plotting."""

import pytest

from repro.viz import multi_scatter, scatter


class TestScatter:
    def test_basic_render(self):
        text = scatter([(1, 1), (2, 2), (3, 3)], width=20, height=6)
        lines = text.splitlines()
        assert any("o" in line for line in lines)

    def test_title(self):
        text = scatter([(1, 1)], title="my plot", width=20, height=6)
        assert text.splitlines()[0] == "my plot"

    def test_log_axes_labels(self):
        text = scatter([(1, 1), (100, 0.01)], log_x=True, log_y=True, width=20, height=6)
        assert "1e" in text

    def test_log_axis_drops_nonpositive(self):
        text = scatter([(0, 1), (10, 1), (100, 2)], log_x=True, width=20, height=6)
        assert "o" in text

    def test_all_points_undrawable_raises(self):
        with pytest.raises(ValueError):
            scatter([(0, 1), (-5, 2)], log_x=True)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            scatter([])

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            scatter([(1, 1)], width=2, height=2)

    def test_monotone_series_renders_diagonal(self):
        text = scatter([(i, i) for i in range(1, 11)], width=20, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        first_cols = [row.index("o") for row in rows if "o" in row]
        # Higher rows (larger y) should sit at larger x columns.
        assert first_cols == sorted(first_cols, reverse=True)


class TestMultiScatter:
    def test_distinct_markers(self):
        text = multi_scatter(
            {"a": [(1, 1)], "b": [(2, 2)]}, width=20, height=6
        )
        assert "o = a" in text
        assert "x = b" in text

    def test_single_unlabeled_series_no_legend(self):
        text = multi_scatter({"": [(1, 1)]}, width=20, height=6)
        assert "=" not in text.splitlines()[-1]

    def test_power_law_is_straightish_in_loglog(self):
        # Sanity: the grid positions of y = x^-2 on log-log axes should be
        # collinear within one cell.
        points = [(10**i, 10 ** (-2 * i)) for i in range(5)]
        text = scatter(points, log_x=True, log_y=True, width=41, height=21)
        rows = [line for line in text.splitlines() if "|" in line]
        coords = []
        for row_index, row in enumerate(rows):
            body = row.split("|", 1)[1]
            for col, char in enumerate(body):
                if char == "o":
                    coords.append((col, row_index))
        xs = [c for c, _ in coords]
        ys = [r for _, r in coords]
        # Straight line: equal column spacing and equal row spacing.
        col_gaps = {xs[i + 1] - xs[i] for i in range(len(xs) - 1)}
        row_gaps = {ys[i + 1] - ys[i] for i in range(len(ys) - 1)}
        assert len(col_gaps) == 1
        assert len(row_gaps) == 1
