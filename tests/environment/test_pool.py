"""Tests for the user pool."""

import pytest

from repro.environment import UserPool


class TestStructure:
    def test_add_and_query(self):
        pool = UserPool()
        pool.add_node("a", users=10)
        assert pool.users("a") == 10
        assert "a" in pool
        assert len(pool) == 1
        assert pool.total_users == 10

    def test_duplicate_node_rejected(self):
        pool = UserPool()
        pool.add_node("a")
        with pytest.raises(ValueError):
            pool.add_node("a")

    def test_negative_users_rejected(self):
        with pytest.raises(ValueError):
            UserPool().add_node("a", users=-1)

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            UserPool(floor=-1)

    def test_sizes_mapping(self):
        pool = UserPool()
        pool.add_node("a", 5)
        pool.add_node("b", 7)
        assert pool.sizes() == {"a": 5, "b": 7}


class TestAssignment:
    def test_conserves_total(self):
        pool = UserPool(seed=1)
        pool.add_node("a", 10)
        pool.add_node("b", 10)
        pool.assign_users(100)
        assert pool.total_users == 120

    def test_preferential_bias(self):
        pool = UserPool(seed=2)
        pool.add_node("big", 900)
        pool.add_node("small", 100)
        gains = pool.assign_users(2000)
        assert gains.get("big", 0) > 3 * gains.get("small", 0)

    def test_bootstrap_from_zero_users(self):
        pool = UserPool(seed=3)
        pool.add_node("a", 0)
        pool.add_node("b", 0)
        gains = pool.assign_users(10)
        assert sum(gains.values()) == 10

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            UserPool().assign_users(1)

    def test_negative_count_rejected(self):
        pool = UserPool()
        pool.add_node("a", 1)
        with pytest.raises(ValueError):
            pool.assign_users(-1)

    def test_zero_count_noop(self):
        pool = UserPool(seed=4)
        pool.add_node("a", 5)
        assert pool.assign_users(0) == {}


class TestWithdrawal:
    def test_respects_floor(self):
        pool = UserPool(floor=3, seed=5)
        pool.add_node("a", 4)
        pool.add_node("b", 100)
        pool.withdraw_users(50)
        assert pool.users("a") >= 3
        assert pool.users("b") >= 3

    def test_conserves_total(self):
        pool = UserPool(seed=6)
        pool.add_node("a", 50)
        pool.add_node("b", 50)
        losses = pool.withdraw_users(20)
        assert sum(losses.values()) == 20
        assert pool.total_users == 80

    def test_over_withdrawal_rejected(self):
        pool = UserPool(floor=1, seed=7)
        pool.add_node("a", 3)
        with pytest.raises(ValueError):
            pool.withdraw_users(5)

    def test_spawn_node_conserves_users(self):
        pool = UserPool(seed=8)
        pool.add_node("a", 100)
        pool.spawn_node("new", initial_users=10)
        assert pool.users("new") == 10
        assert pool.users("a") == 90
        assert pool.total_users == 100


class TestRelocation:
    def test_conserves_total(self):
        pool = UserPool(seed=9)
        pool.add_node("a", 100)
        pool.add_node("b", 100)
        moved = pool.relocate_users(30)
        assert moved == 30
        assert pool.total_users == 200

    def test_respects_floor(self):
        pool = UserPool(floor=2, seed=10)
        pool.add_node("a", 2)
        pool.add_node("b", 50)
        pool.relocate_users(20)
        assert pool.users("a") >= 2

    def test_exhausted_donors_partial(self):
        pool = UserPool(floor=1, seed=11)
        pool.add_node("a", 2)
        pool.add_node("b", 1)
        moved = pool.relocate_users(10)
        assert moved <= 10
        assert pool.total_users == 3

    def test_negative_rejected(self):
        pool = UserPool()
        pool.add_node("a", 5)
        with pytest.raises(ValueError):
            pool.relocate_users(-2)

    def test_preferential_destination(self):
        pool = UserPool(seed=12)
        pool.add_node("big", 1000)
        pool.add_node("small", 10)
        pool.add_node("donor", 500)
        pool.relocate_users(300)
        # big should attract far more than small (it is 100x larger).
        assert pool.users("big") > 1000
