"""Tests for exponential schedules and growth series."""

import math

import pytest

from repro.environment import ExponentialSchedule, GrowthSeries


class TestExponentialSchedule:
    def test_increments_track_curve(self):
        sched = ExponentialSchedule(x0=100, rate=0.05)
        total = sched.x0
        for t in range(1, 100):
            total += sched.increment(t)
            assert abs(total - sched.target(t)) < 1.0  # carry keeps error < 1

    def test_negative_rate_shrinks(self):
        sched = ExponentialSchedule(x0=1000, rate=-0.1)
        increments = [sched.increment(t) for t in range(1, 20)]
        assert all(i <= 0 for i in increments)

    def test_out_of_order_rejected(self):
        sched = ExponentialSchedule(x0=10, rate=0.1)
        sched.increment(1)
        with pytest.raises(ValueError):
            sched.increment(3)

    def test_reset(self):
        sched = ExponentialSchedule(x0=10, rate=0.3)
        first = sched.increment(1)
        sched.reset()
        assert sched.increment(1) == first

    def test_invalid_x0_rejected(self):
        with pytest.raises(ValueError):
            ExponentialSchedule(x0=0, rate=0.1)

    def test_zero_rate_constant(self):
        sched = ExponentialSchedule(x0=50, rate=0.0)
        assert all(sched.increment(t) == 0 for t in range(1, 10))

    def test_target(self):
        sched = ExponentialSchedule(x0=2, rate=1.0)
        assert sched.target(1) == pytest.approx(2 * math.e)


class TestGrowthSeries:
    def test_record_and_iterate(self):
        series = GrowthSeries(name="hosts")
        series.record(0, 10)
        series.record(1, 20)
        assert len(series) == 2
        assert list(series) == [(0.0, 10.0), (1.0, 20.0)]

    def test_times_must_increase(self):
        series = GrowthSeries(name="x")
        series.record(5, 1)
        with pytest.raises(ValueError):
            series.record(5, 2)
        with pytest.raises(ValueError):
            series.record(4, 2)

    def test_feeds_exponential_fitter(self):
        from repro.stats import fit_exponential_growth

        series = GrowthSeries(name="w")
        for t in range(30):
            series.record(t, 100 * math.exp(0.04 * t))
        fit = fit_exponential_growth(series.times, series.values)
        assert fit.rate == pytest.approx(0.04, abs=1e-9)
