"""Growth analysis: measure the rates, check the balance, forecast.

Run:

    python examples/growth_forecast.py

Works through the supply/demand growth arithmetic at the heart of
environment-coupled internet models: fit exponential rates to the
hosts/AS/links timeline, verify the demand-supply ordering
``alpha > delta > beta``, derive the scaling relations, and cross-check
them against an actual simulation of the weighted-growth model.
"""

from __future__ import annotations

from repro.core import format_table
from repro.datasets import hobbes_like_timeline
from repro.generators import SerranoGenerator
from repro.stats import doubling_time, fit_exponential_growth, fit_power_scaling


def main() -> None:
    print("Fitting growth rates to the hosts/AS/links timeline...")
    series = hobbes_like_timeline()
    fits = {}
    rows = []
    for key in ("hosts", "ases", "links"):
        fit = fit_exponential_growth(series[key].times, series[key].values)
        fits[key] = fit
        rows.append([key, fit.rate, doubling_time(fit.rate), fit.r_squared])
    print(format_table(
        ["series", "rate (/month)", "doubling (months)", "R^2"],
        rows,
        title="Fitted exponential growth",
    ))
    print()

    alpha, beta, delta = fits["hosts"].rate, fits["ases"].rate, fits["links"].rate
    print("Demand/supply balance:")
    print(f"  alpha (demand) = {alpha:.4f}  >  delta (links) = {delta:.4f}"
          f"  >  beta (ASes) = {beta:.4f}: "
          f"{'balanced' if alpha > delta > beta else 'IMBALANCED'}")
    print(f"  users per AS grow like N^{alpha / beta - 1:.2f}")
    print(f"  average degree grows like N^{delta / beta - 1:.2f}")
    print()

    print("Cross-checking on a simulated weighted-growth internet...")
    run = SerranoGenerator().generate_detailed(2000, seed=11)
    sim_rows = []
    for key, expected in (("users", 0.035), ("nodes", 0.030), ("bandwidth", 0.040)):
        data = run.history[key]
        fit = fit_exponential_growth(data.times[20:], data.values[20:])
        sim_rows.append([key, fit.rate, expected])
    print(format_table(
        ["series", "measured rate", "configured rate"],
        sim_rows,
        title="Simulation growth rates",
    ))
    print()

    # E ∝ N^(delta/beta): fit the scaling straight off the trajectories.
    nodes = run.history["nodes"].values[20:]
    edges = run.history["edges"].values[20:]
    scaling = fit_power_scaling(nodes, edges)
    print(f"Edges scale as N^{scaling.exponent:.2f} in the simulation "
          f"(growth theory predicts N^{0.03375 / 0.03:.2f}).")

    horizon = 24
    projected = fits["ases"].predict(len(series["ases"]) + horizon)
    print(f"\nForecast: at current rates the AS count reaches "
          f"{projected:,.0f} in {horizon} months.")


if __name__ == "__main__":
    main()
