"""ISP economics: but can you make a living?

Run:

    python examples/isp_economics.py [n]

Grows a weighted supply/demand internet (users, bandwidth adaptation,
geography), then runs the full economics pipeline on it: business
relationships, valley-free routing of a gravity traffic matrix, and one
month of transit/peering/retail settlement.  Prints each tier's books and
answers the keynote's question per tier.
"""

from __future__ import annotations

import sys

from repro.core import format_table
from repro.economics import (
    PricingModel,
    assign_relationships,
    gravity_flows,
    route_flows,
    settle_market,
)
from repro.generators import SerranoGenerator
from repro.graph import giant_component


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1500

    print(f"Growing a {n}-AS internet with the weighted supply/demand model...")
    run = SerranoGenerator(distance=True).generate_detailed(n, seed=2026)
    graph = giant_component(run.graph)
    users = {node: run.users[node] for node in graph.nodes()}
    print(f"  {graph!r}")
    print(f"  total users: {sum(users.values()):,}")
    print()

    print("Assigning business relationships (Gao-style hierarchy)...")
    rels = assign_relationships(graph)
    c2p, p2p = rels.counts()
    tiers = rels.tiers()
    print(f"  {c2p} customer->provider links, {p2p} peerings, "
          f"{len(rels.tier_one())} tier-1 ASes")
    print()

    print("Routing a gravity traffic matrix valley-free...")
    matrix = gravity_flows(users, num_flows=3000, total_volume=1_000_000, seed=5)
    traffic = route_flows(graph, rels, matrix)
    routed = matrix.total_volume - traffic.unroutable
    print(f"  routed {routed:,.0f} of {matrix.total_volume:,.0f} units "
          f"({traffic.unroutable / matrix.total_volume:.1%} stranded)")
    print()

    pricing = PricingModel(
        transit_price=1.0,     # per unit crossing a transit link
        retail_price=2.0,      # per subscriber per month
        peering_cost=50.0,     # per peering port per month
        carriage_cost=0.05,    # backbone opex per unit carried
        link_cost=10.0,        # per adjacent link per month
    )
    print("Settling one month of books...")
    report = settle_market(graph, rels, traffic, users=users, pricing=pricing)
    rows = [
        [tier, count, mean_profit, mean_transit, f"{frac:.0%}"]
        for tier, count, mean_profit, mean_transit, frac in report.tier_summary()
    ]
    print(format_table(
        ["tier", "ASes", "mean profit", "mean transit revenue", "profitable"],
        rows,
        title="Monthly books by tier",
    ))
    print()
    print(f"Transit revenue concentration (HHI): "
          f"{report.transit_revenue_concentration():.3f}")
    print(f"Overall profitable fraction:         "
          f"{report.profitable_fraction():.1%}")
    print()

    # The keynote's question, answered per tier.
    tier1_frac = report.profitable_fraction(tier=1)
    deepest = max(tiers.values())
    stub_frac = report.profitable_fraction(tier=deepest)
    print("So, can you make a living modeling... er, running an AS?")
    print(f"  - at tier 1:  {'yes' if tier1_frac > 0.8 else 'mostly not'} "
          f"({tier1_frac:.0%} profitable — transit pays)")
    print(f"  - at tier {deepest} (stubs): "
          f"{'yes' if stub_frac > 0.8 else 'only with enough subscribers'} "
          f"({stub_frac:.0%} profitable)")


if __name__ == "__main__":
    main()
