"""Resilience stress test: attacks, failures, and epidemics.

Run:

    python examples/resilience_stress_test.py [n]

Subjects an internet-like topology and an Erdős–Rényi strawman to the two
canonical dynamics experiments — Albert–Jeong–Barabási node removal and
SIS epidemic spreading — and draws the results as ASCII figures.
"""

from __future__ import annotations

import sys

from repro.core import format_table
from repro.generators import ErdosRenyiGnm, SerranoGenerator
from repro.graph import epidemic_threshold, giant_component, spectral_radius
from repro.resilience import (
    AttackStrategy,
    critical_fraction,
    prevalence_curve,
    removal_sweep,
)
from repro.viz import multi_scatter


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000

    print(f"Building a {n}-AS internet and a matched ER strawman...")
    internet = giant_component(SerranoGenerator().generate(n, seed=99))
    strawman = giant_component(
        ErdosRenyiGnm(m=internet.num_edges).generate(internet.num_nodes, seed=99)
    )
    print(f"  internet: {internet!r}")
    print(f"  strawman: {strawman!r}")
    print()

    print("1. Removal sweeps (fraction removed vs giant component)...")
    series = {}
    rows = []
    for label, graph in (("internet", internet), ("er", strawman)):
        random_run = removal_sweep(graph, AttackStrategy.RANDOM, steps=12, seed=1)
        attack_run = removal_sweep(graph, AttackStrategy.DEGREE, steps=12, seed=1)
        series[f"{label} random"] = random_run.as_points()
        series[f"{label} attack"] = attack_run.as_points()
        rows.append(
            [
                label,
                random_run.giant_at(0.5),
                attack_run.giant_at(0.5),
                critical_fraction(attack_run) or float("nan"),
            ]
        )
    print(multi_scatter(series, width=56, height=16,
                        title="giant component under removal"))
    print()
    print(format_table(
        ["topology", "giant @50% random", "giant @50% attack", "attack collapse at"],
        rows,
    ))
    print()

    print("2. SIS epidemics (infection rate vs endemic prevalence)...")
    betas = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)
    curves = {
        "internet": prevalence_curve(internet, betas, seed=2),
        "er": prevalence_curve(strawman, betas, seed=2),
    }
    print(multi_scatter(curves, width=56, height=14, log_x=True,
                        title="SIS phase diagram"))
    for label, graph in (("internet", internet), ("er", strawman)):
        print(f"  {label}: lambda1 = {spectral_radius(graph):.2f}, "
              f"spectral threshold = {epidemic_threshold(graph) * 0.5:.4f} "
              f"(at mu = 0.5)")
    print()
    print("Takeaway: the internet-like topology survives random failure and")
    print("cheap epidemics that would die on the ER graph — and collapses")
    print("first when its hubs are targeted. Hubs give and hubs take away.")


if __name__ == "__main__":
    main()
