"""Generator shoot-out: which internet model earns its keep?

Run:

    python examples/generator_shootout.py [n]

Reproduces the classic comparison workflow end-to-end at a configurable
size (default 1200): every roster model vs the reference AS map on the
scalar battery, ranked by divergence score, followed by the degree-CCDF
exponent table.  This is experiments T1 + F2 driven through the public
experiment API.
"""

from __future__ import annotations

import sys

from repro.experiments import run_f2, run_t1


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1200

    print(f"Running the T1 comparison at n={n} (this takes a minute)...")
    t1 = run_t1(n=n, seeds=2)
    print()
    print(t1.render())
    print()

    headers, ranking = t1.tables["ranking (best first)"]
    best, best_score = ranking[0]
    worst, worst_score = ranking[-1]
    print(f"Verdict: '{best}' tracks the reference best "
          f"(score {best_score:.3f}); '{worst}' misses by "
          f"{worst_score / max(best_score, 1e-9):.0f}x as much.")
    print()

    print("Degree distribution exponents (F2)...")
    f2 = run_f2(n=n, seed=1)
    label = "fitted degree exponents"
    from repro.core import format_table

    table_headers, rows = f2.tables[label]
    print(format_table(table_headers, rows, title=label))


if __name__ == "__main__":
    main()
