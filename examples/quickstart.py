"""Quickstart: generate an internet-like topology, measure it, compare it.

Run:

    python examples/quickstart.py

Covers the three core calls every user starts with — ``repro.generate``,
``repro.summarize``, ``repro.compare`` — plus saving the result to an
edge-list file any other tool can read.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.graph import write_edge_list


def main() -> None:
    print("Available models:")
    for name in repro.available_models():
        print(f"  - {name}")
    print()

    # 1. Generate a 2000-AS topology with the GLP model (Bu-Towsley 2002).
    graph = repro.generate("glp", n=2000, seed=7)
    print(f"Generated: {graph!r}")

    # 2. Measure it with the full scalar battery.
    summary = repro.summarize(graph)
    print(f"Summary:   {summary}")
    print()

    # 3. Compare against the frozen reference AS map.
    reference = repro.reference_as_map(2000)
    result = repro.compare(graph, reference)
    print(result)
    print()

    # 4. Save the topology for external tools.
    out = Path(tempfile.gettempdir()) / "glp-2000.txt"
    write_edge_list(graph, out)
    print(f"Edge list written to {out}")

    # 5. The same model at a different density: parameters are plain kwargs.
    denser = repro.generate("glp", n=2000, seed=7, m=2.0, p=0.3)
    print(f"Denser variant: <k> = {denser.average_degree:.2f} "
          f"(was {graph.average_degree:.2f})")


if __name__ == "__main__":
    main()
