"""Measurement pitfalls: is your power law real?

Run:

    python examples/measurement_pitfalls.py [n]

The keynote era's sharpest methodological fight, reenacted in one script:

1. **Sampling bias** (Lakhina et al.) — traceroute-style sampling from one
   monitor makes a boring random graph look like an internet map;
2. **Null models** (Maslov–Sneppen / dK-series) — once you *have* a real
   heavy-tailed map, which of its features go beyond the degree sequence?
"""

from __future__ import annotations

import math
import sys

from repro.analysis import traceroute_sample
from repro.core import format_table, summarize
from repro.datasets import reference_as_map
from repro.generators import ErdosRenyiGnm, dk2_rewired, rewired_reference
from repro.graph import giant_component
from repro.stats import empirical_ccdf, fit_powerlaw_auto_xmin, gini_coefficient
from repro.viz import multi_scatter


def fitted_gamma(graph) -> float:
    """Best-effort degree exponent; NaN when no tail fits."""
    try:
        return fit_powerlaw_auto_xmin(
            list(graph.degrees().values()), min_tail=50
        ).gamma
    except ValueError:
        return float("nan")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1500

    print("PART 1 — the artifact: sampling a dense random graph")
    truth = giant_component(ErdosRenyiGnm(m=8 * n).generate(n, seed=1))
    rows = [["ground truth", truth.num_edges, fitted_gamma(truth),
             gini_coefficient(truth.degrees().values())]]
    curves = {"truth": empirical_ccdf(list(truth.degrees().values())).as_points()}
    for monitors in (1, 3, 10):
        view = traceroute_sample(truth, num_monitors=monitors, seed=2)
        degrees = list(view.degrees().values())
        rows.append([f"{monitors} monitor view", view.num_edges,
                     fitted_gamma(view), gini_coefficient(degrees)])
        curves[f"{monitors} monitors"] = empirical_ccdf(degrees).as_points()
    print(format_table(
        ["view", "edges seen", "fitted gamma", "degree Gini"], rows,
    ))
    print()
    print(multi_scatter(curves, width=56, height=14, log_x=True, log_y=True,
                        title="degree CCDFs: truth vs sampled views"))
    print()
    gamma_one = rows[1][2]
    print(f"One monitor fits gamma = {gamma_one:.2f} — an 'internet-like' tail")
    print("conjured out of a Poisson graph. Monitor diversity dissolves it.")
    print()

    print("PART 2 — the nulls: what survives degree-preserving rewiring?")
    reference = reference_as_map(n)
    null_1k = rewired_reference(reference, swaps_per_edge=8, seed=3)
    null_2k = dk2_rewired(reference, swaps_per_edge=8, seed=3)
    summaries = {
        "reference": summarize(reference, seed=0),
        "2K null": summarize(null_2k, name="2K null", seed=0),
        "1K null": summarize(null_1k, name="1K null", seed=0),
    }
    rows = []
    for metric in ("average_degree", "degree_exponent", "average_clustering",
                   "assortativity", "average_path_length", "degeneracy"):
        rows.append([metric] + [s.as_dict()[metric] for s in summaries.values()])
    print(format_table(["metric"] + list(summaries), rows))
    print()
    print("The 2K null pins assortativity exactly (it is a joint-degree-")
    print("matrix property); with a tail this heavy, even the 1K null stays")
    print("close everywhere — most 'structure' rides on the degree sequence.")
    print()
    print("Moral: model the internet, but audit the measurement first.")


if __name__ == "__main__":
    main()
