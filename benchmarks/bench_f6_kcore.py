"""F6 — k-core decomposition profile figure."""

from conftest import run_once

from repro.experiments import run_f6


def test_f6_kcore_profiles(benchmark, record_experiment):
    result = run_once(benchmark, run_f6, n=1500, seed=5)
    record_experiment(result)
    headers, rows = result.tables["core depth"]
    coreness = {row[0]: row[1] for row in rows}
    # Shape: the reference has a deep nucleus; BA is pinned at m; the
    # weighted-growth models approach the reference's depth.
    assert coreness["reference"] >= 8
    assert coreness["barabasi-albert"] == 2
    assert coreness["serrano-distance"] >= 0.5 * coreness["reference"]
    assert coreness["erdos-renyi"] <= 4
