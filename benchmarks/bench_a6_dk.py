"""A6 — dK-series nulls: which correlation order explains the map?"""

from conftest import run_once

from repro.experiments import run_a6


def test_a6_dk_nulls(benchmark, record_experiment):
    result = run_once(benchmark, run_a6, n=1500)
    record_experiment(result)
    r_template = result.notes["assortativity_template"]
    r_2k = result.notes["assortativity_2k"]
    r_1k = result.notes["assortativity_1k"]
    # Shape: the JDM determines assortativity, so the 2K null matches it
    # to numerical precision while the 1K null drifts (if only slightly).
    assert abs(r_2k - r_template) < 0.01
    assert abs(r_2k - r_template) <= abs(r_1k - r_template) + 1e-9
    # The headline AS-map finding (Maslov–Sneppen debate): with a heavy
    # tail this strong, even the 1K null stays close on every scalar —
    # the degree sequence itself carries most of the structure.
    headers, rows = result.tables["metric survival under dK nulls"]
    for metric, template, null_2k, null_1k in rows:
        if template == 0:
            continue
        assert abs(null_1k - template) / abs(template) < 0.35, metric
        assert abs(null_2k - template) / abs(template) < 0.35, metric
