"""T2 — cycle-count scaling exponents xi(3), xi(4), xi(5)."""

from conftest import run_once

from repro.experiments import run_t2


def test_t2_loop_scaling(benchmark, record_experiment):
    result = run_once(
        benchmark, run_t2, sizes=(400, 800, 1600, 3200), seeds=2
    )
    record_experiment(result)
    for key in ("without", "with"):
        xi3 = result.notes[f"xi_3_{key}"]
        xi4 = result.notes[f"xi_4_{key}"]
        xi5 = result.notes[f"xi_5_{key}"]
        # Shape: superlinear growth, ordered in h, near the published band
        # (AS map: 1.45 / 2.07 / 2.45; original model: 1.6 / 2.2 / 2.7).
        assert xi3 < xi4 < xi5, key
        assert 1.2 < xi3 < 2.3, key
        assert 1.8 < xi4 < 3.0, key
        assert 2.1 < xi5 < 3.7, key
