"""F9 — degree vs bandwidth scaling (k = b^mu) figure."""

from conftest import run_once

from repro.experiments import run_f9


def test_f9_degree_bandwidth_scaling(benchmark, record_experiment):
    result = run_once(benchmark, run_f9, n=2000, seed=8)
    record_experiment(result)
    # Shape: sublinear scaling with substantial multi-edge mass; the fitted
    # mu sits between the analytic 0.75 and 1 (finite-size pairing friction
    # documented in EXPERIMENTS.md).
    assert result.notes["sublinear"] == 1.0
    assert 0.70 < result.notes["mu_fitted"] < 0.97
    assert result.notes["multi_edge_mass"] > 1.3
