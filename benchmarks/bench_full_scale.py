"""Full-scale validation: the weighted-growth model at 2001-map size,
plus the out-of-core store at 10^5-10^6 nodes.

The other benches run at reduced sizes for speed; this one generates the
model at N = 11 000 — the size of the May 2001 AS map the literature
measured — and checks the battery against the published values directly
(no synthetic reference involved).

The out-of-core series grows a PLRG topology in checkpointed chunks into
a :class:`repro.store.GraphStore`, then *in a fresh subprocess* reopens
the mmap CSR snapshot and runs the size metric group — asserting the
whole read path fits a peak-RSS budget that a materialized dict-of-dict
graph could not.  The subprocess matters: ``ru_maxrss`` is a
process-lifetime high-water mark, so measuring in the grower process
would only ever see the growth phase's peak.  The 10^6 point runs when
``REPRO_SCALE_FULL=1`` (a couple of minutes and a few hundred MB of
disk); 10^5 runs everywhere and is the CI scale-smoke gate.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import summarize
from repro.datasets import PUBLISHED_AS_MAP_TARGETS
from repro.generators import SerranoGenerator
from repro.store import GraphStore, grow_to_store


def test_full_scale_2001_map(benchmark, record_experiment):
    graph = benchmark.pedantic(
        SerranoGenerator().generate, args=(11_000,), kwargs={"seed": 2001},
        rounds=1, iterations=1,
    )
    summary = summarize(graph, path_samples=200, seed=0)
    print()
    print(summary)

    targets = PUBLISHED_AS_MAP_TARGETS
    # Degree exponent in the published 2.1-2.3 band (within fit noise).
    assert abs(summary.degree_exponent - targets["degree_exponent"]) < 0.25
    # Disassortativity right on the published r = -0.19.
    assert abs(summary.assortativity - targets["assortativity"]) < 0.06
    # Small world at the published scale.
    assert abs(summary.average_path_length - targets["average_path_length"]) < 0.6
    # Core depth comparable to the AS+ map's ~25 shells.
    assert abs(summary.degeneracy - targets["coreness"]) <= 8
    # Clustering within a factor ~2 of the AS+ map.
    assert summary.average_clustering > 0.5 * targets["average_clustering"] * 0.5
    # Hub scaling: the largest AS connects to a macroscopic fraction.
    assert summary.max_degree_fraction > 0.05


def test_full_scale_engine_speedup(perf):
    """The vector growth engine must hold a >= 3x floor at map scale.

    Same seed, both kernels; the graphs differ (Serrano is
    engine-sensitive — see docs/performance.md) but both are held to the
    published property bands by the battery above and the equivalence
    suite, so this is purely a wall-clock gate — the floor lives in
    ``perf_floors.json`` (``full-scale-serrano-speedup``).
    """
    start = time.perf_counter()
    python_graph = SerranoGenerator(engine="python").generate(11_000, seed=2001)
    python_s = time.perf_counter() - start
    start = time.perf_counter()
    vector_graph = SerranoGenerator(engine="vector").generate(11_000, seed=2001)
    vector_s = time.perf_counter() - start
    assert python_graph.num_nodes == vector_graph.num_nodes == 11_000
    speedup = python_s / vector_s
    print(f"\nserrano n=11000: python {python_s:.2f}s, "
          f"vector {vector_s:.2f}s, speedup {speedup:.2f}x")
    perf.bench_id = "full_scale_serrano"
    perf.params["n"] = 11_000
    perf.values["python_seconds"] = python_s
    perf.values["vector_seconds"] = vector_s
    perf.values["speedup"] = speedup


# One subprocess script: reopen the store's mmap CSR view, measure the
# size group, report peak RSS.  peak_rss_kb (VmHWM) rather than
# ru_maxrss: the child is forked from this bloated grower process, and
# ru_maxrss inherits the parent's resident set across fork+exec.  The
# script imports scipy (the component kernel), so the budget must cover
# the interpreter + numpy + scipy baseline; the graph itself must stay
# out of resident memory.
_MEASURE_SCRIPT = """
import json, sys
from repro.obs.sampler import peak_rss_kb
from repro.store import GraphStore

store = GraphStore.open(sys.argv[1])
values = store.measure()
print(json.dumps({"values": values, "peak_rss_kb": peak_rss_kb()}))
"""

# Peak-RSS budgets for the reopen-and-measure subprocess live in
# perf_floors.json (full-scale-rss-1e5 / full-scale-rss-1e6): the
# interpreter + numpy + scipy baseline is ~120 MB; a materialized
# dict-of-dict graph would add ~1 GB at 10^6 nodes, so the budgets fail
# loudly if anything on the read path regresses to materializing.


def _scale_points():
    points = [100_000]
    if os.environ.get("REPRO_SCALE_FULL") == "1":
        points.append(1_000_000)
    return points


@pytest.mark.parametrize("n", _scale_points())
def test_out_of_core_scale_series(n, tmp_path, perf):
    from repro.core.registry import make_generator

    perf.bench_id = f"full_scale_oocore_{n}"

    path = tmp_path / f"plrg_{n}.db"
    start = time.perf_counter()
    report = grow_to_store(
        make_generator("plrg", gamma=2.2),
        n,
        path,
        seed=2026,
        checkpoint_every=50_000,
    )
    grow_s = time.perf_counter() - start
    assert report.num_nodes == n
    assert report.chunks_written == -(-n // 50_000)

    # Reuse without regeneration: a second call must be pure bookkeeping.
    start = time.perf_counter()
    again = grow_to_store(
        make_generator("plrg", gamma=2.2),
        n,
        path,
        seed=2026,
        checkpoint_every=50_000,
    )
    reopen_s = time.perf_counter() - start
    assert not again.regenerated
    assert reopen_s < grow_s

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    env.setdefault("REPRO_BACKEND", "csr")
    proc = subprocess.run(
        [sys.executable, "-c", _MEASURE_SCRIPT, str(path)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    result = json.loads(proc.stdout)
    values = result["values"]
    peak_kb = result["peak_rss_kb"]
    print(
        f"\nplrg n={n}: grew {report.num_edges} edges in {grow_s:.1f}s "
        f"({report.chunks_written} chunks), reopen {reopen_s * 1e3:.0f}ms, "
        f"measure peak RSS {peak_kb / 1024:.0f} MB"
    )
    assert values["num_nodes"] > 0.5 * n  # PLRG giant component
    assert 0 < values["giant_fraction"] <= 1.0
    perf.values["grow_seconds"] = grow_s
    perf.values["reopen_seconds"] = reopen_s
    perf.values["measure_peak_rss_kb"] = peak_kb
