"""Full-scale validation: the weighted-growth model at 2001-map size.

The other benches run at reduced sizes for speed; this one generates the
model at N = 11 000 — the size of the May 2001 AS map the literature
measured — and checks the battery against the published values directly
(no synthetic reference involved).
"""

from repro.core import summarize
from repro.datasets import PUBLISHED_AS_MAP_TARGETS
from repro.generators import SerranoGenerator


def test_full_scale_2001_map(benchmark, record_experiment):
    graph = benchmark.pedantic(
        SerranoGenerator().generate, args=(11_000,), kwargs={"seed": 2001},
        rounds=1, iterations=1,
    )
    summary = summarize(graph, path_samples=200, seed=0)
    print()
    print(summary)

    targets = PUBLISHED_AS_MAP_TARGETS
    # Degree exponent in the published 2.1-2.3 band (within fit noise).
    assert abs(summary.degree_exponent - targets["degree_exponent"]) < 0.25
    # Disassortativity right on the published r = -0.19.
    assert abs(summary.assortativity - targets["assortativity"]) < 0.06
    # Small world at the published scale.
    assert abs(summary.average_path_length - targets["average_path_length"]) < 0.6
    # Core depth comparable to the AS+ map's ~25 shells.
    assert abs(summary.degeneracy - targets["coreness"]) <= 8
    # Clustering within a factor ~2 of the AS+ map.
    assert summary.average_clustering > 0.5 * targets["average_clustering"] * 0.5
    # Hub scaling: the largest AS connects to a macroscopic fraction.
    assert summary.max_degree_fraction > 0.05
