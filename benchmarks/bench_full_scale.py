"""Full-scale validation: the weighted-growth model at 2001-map size.

The other benches run at reduced sizes for speed; this one generates the
model at N = 11 000 — the size of the May 2001 AS map the literature
measured — and checks the battery against the published values directly
(no synthetic reference involved).
"""

import time

from repro.core import summarize
from repro.datasets import PUBLISHED_AS_MAP_TARGETS
from repro.generators import SerranoGenerator


def test_full_scale_2001_map(benchmark, record_experiment):
    graph = benchmark.pedantic(
        SerranoGenerator().generate, args=(11_000,), kwargs={"seed": 2001},
        rounds=1, iterations=1,
    )
    summary = summarize(graph, path_samples=200, seed=0)
    print()
    print(summary)

    targets = PUBLISHED_AS_MAP_TARGETS
    # Degree exponent in the published 2.1-2.3 band (within fit noise).
    assert abs(summary.degree_exponent - targets["degree_exponent"]) < 0.25
    # Disassortativity right on the published r = -0.19.
    assert abs(summary.assortativity - targets["assortativity"]) < 0.06
    # Small world at the published scale.
    assert abs(summary.average_path_length - targets["average_path_length"]) < 0.6
    # Core depth comparable to the AS+ map's ~25 shells.
    assert abs(summary.degeneracy - targets["coreness"]) <= 8
    # Clustering within a factor ~2 of the AS+ map.
    assert summary.average_clustering > 0.5 * targets["average_clustering"] * 0.5
    # Hub scaling: the largest AS connects to a macroscopic fraction.
    assert summary.max_degree_fraction > 0.05


def test_full_scale_engine_speedup():
    """The vector growth engine must hold a >= 3x floor at map scale.

    Same seed, both kernels; the graphs differ (Serrano is
    engine-sensitive — see docs/performance.md) but both are held to the
    published property bands by the battery above and the equivalence
    suite, so this is purely a wall-clock gate.
    """
    start = time.perf_counter()
    python_graph = SerranoGenerator(engine="python").generate(11_000, seed=2001)
    python_s = time.perf_counter() - start
    start = time.perf_counter()
    vector_graph = SerranoGenerator(engine="vector").generate(11_000, seed=2001)
    vector_s = time.perf_counter() - start
    assert python_graph.num_nodes == vector_graph.num_nodes == 11_000
    speedup = python_s / vector_s
    print(f"\nserrano n=11000: python {python_s:.2f}s, "
          f"vector {vector_s:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= 3.0, (python_s, vector_s)
