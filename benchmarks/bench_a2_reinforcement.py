"""A2 — reinforcement parameter r sweep (design-choice ablation)."""

from conftest import run_once

from repro.experiments import run_a2


def test_a2_reinforcement_sweep(benchmark, record_experiment):
    result = run_once(benchmark, run_a2, n=1200)
    record_experiment(result)
    headers, rows = result.tables["r sweep"]
    by_r = {row[0]: row for row in rows}
    # Shape: gamma is r-stable in the interior (the published claim)...
    assert abs(result.notes["gamma_low_r"] - result.notes["gamma_high_r"]) < 0.25
    # ...clustering falls as reinforcement concentrates bandwidth into
    # fewer, fatter links...
    assert by_r[0.95][2] < by_r[0.0][2]
    # ...and r -> 1 suppresses the maximum degree (big peers burn their
    # activity on parallel links to each other).
    assert by_r[0.95][4] < by_r[0.0][4]
    # Multi-edge mass rises monotonically-ish with r.
    assert by_r[0.95][5] >= by_r[0.0][5]
