"""A1 — transit market consolidation (design-choice ablation)."""

from conftest import run_once

from repro.experiments import run_a1


def test_a1_market_consolidation(benchmark, record_experiment):
    result = run_once(benchmark, run_a1, n=1000, rounds=6, num_flows=1200)
    record_experiment(result)
    # Shape: the provider market hollows out while the internet survives.
    assert result.notes["provider_shrink_ratio"] < 0.5
    assert result.notes["as_survival_ratio"] > 0.6
    # Revenue concentrates as carriers exit.
    assert result.notes["hhi_trend"] > -0.01
    # Re-homing keeps the surviving market routable.
    assert result.notes["final_unroutable"] < 0.15
