"""T3 — ISP economics table: tier P&L and market concentration."""

from conftest import run_once

from repro.experiments import run_t3


def test_t3_isp_economics(benchmark, record_experiment):
    result = run_once(benchmark, run_t3, n=1000, num_flows=1200, seed=9)
    record_experiment(result)
    headers, rows = result.tables["market summary"]
    by_model = {row[0]: row for row in rows}
    # Shape: heavy-tailed topologies concentrate transit revenue far more
    # than the flat ER hierarchy...
    assert result.notes["serrano_vs_er_hhi_ratio"] > 1.5
    # ...tier-1 ASes on the weighted-growth topology all break even...
    assert by_model["serrano"][2] == 1.0
    # ...hierarchical topologies route essentially all demand valley-free...
    for model in ("serrano", "glp", "pfp"):
        assert by_model[model][4] < 0.2, model
    # ...while the flat ER topology cannot support a transit economy at
    # all: with no degree hierarchy almost every edge is a peering, and
    # valley-free routing (at most one peer hop) strands most pairs.
    assert by_model["erdos-renyi"][4] > 0.5
