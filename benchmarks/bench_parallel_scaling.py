"""Microbenchmark: battery-runner scaling at 1/2/4 workers, plus warm cache.

Records the wall clock of one fixed battery workload at increasing worker
counts (speedup is hardware-bound — ideal on a 4-core machine, flat on a
1-core container, which is why this bench records rather than asserts the
cold-run scaling) and asserts the parts that are hardware-independent:
every configuration returns bit-identical summaries, and a warm cache
serves the whole battery without recomputing anything.

All headline measurements are published through ``perf.values`` into the
bench's ``BENCH_*.json`` record; the hardware-independent bound (warm
cache beats serial recomputation) is enforced declaratively by the
``scaling-warm-speedup`` floor in ``perf_floors.json`` rather than an
ad-hoc assert here.
"""

import os
import tempfile
import time

from repro.core import run_battery
from repro.experiments.base import ExperimentResult

MODELS = ["barabasi-albert", "glp", "pfp", "serrano"]
KWARGS = dict(n=400, seeds=2, min_tail=20, path_samples=100, path_sample_threshold=200)
WORKER_COUNTS = (1, 2, 4)


def test_parallel_scaling(perf, record_experiment):
    result = ExperimentResult(
        experiment_id="SCALING",
        title="battery runner scaling (workers and warm cache)",
    )
    timings = {}
    baseline = None
    for jobs in WORKER_COUNTS:
        start = time.perf_counter()
        battery = run_battery(MODELS, jobs=jobs, **KWARGS)
        timings[f"jobs={jobs}"] = time.perf_counter() - start
        summaries = {e.model: e.summaries for e in battery.entries}
        if baseline is None:
            baseline = summaries
        else:
            assert summaries == baseline  # bit-identical at every jobs value

    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = run_battery(MODELS, jobs=1, cache=cache_dir, **KWARGS)
        timings["cold cache"] = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_battery(MODELS, jobs=1, cache=cache_dir, **KWARGS)
        timings["warm cache"] = time.perf_counter() - start
        assert warm.stats.misses == 0  # zero recomputation
        assert {e.model: e.summaries for e in warm.entries} == baseline
        assert {e.model: e.summaries for e in cold.entries} == baseline

    serial = timings["jobs=1"]
    result.add_table(
        f"wall clock ({os.cpu_count()} cpus)",
        ["mode", "seconds", "speedup vs jobs=1"],
        [[mode, seconds, serial / seconds] for mode, seconds in timings.items()],
    )
    for mode, seconds in timings.items():
        result.notes[f"seconds[{mode}]"] = round(seconds, 4)
    record_experiment(result)

    perf.params.update(models=",".join(MODELS), **{k: v for k, v in KWARGS.items()})
    for jobs in WORKER_COUNTS[1:]:
        perf.values[f"speedup_jobs{jobs}"] = serial / timings[f"jobs={jobs}"]
    perf.values["serial_seconds"] = serial
    perf.values["cold_cache_seconds"] = timings["cold cache"]
    perf.values["warm_cache_seconds"] = timings["warm cache"]
    # Floor-gated: warm cache must beat serial recomputation anywhere.
    perf.values["warm_speedup"] = serial / timings["warm cache"]
