"""T4 — ablation table: distance constraints on vs off."""

from conftest import run_once

from repro.experiments import run_t4


def test_t4_distance_ablation(benchmark, record_experiment):
    result = run_once(benchmark, run_t4, n=1200, seeds=2)
    record_experiment(result)
    # Shape: geography adds a disassortative component while the degree
    # exponent stays put (the original distance-constraint claim).
    assert result.notes["assortativity_shift"] < 0.03
    assert abs(result.notes["gamma_shift"]) < 0.3
    headers, rows = result.tables["distance ablation (seed means)"]
    values = {row[0]: (row[1], row[3]) for row in rows}
    without_c, with_c = values["average_clustering"]
    # Clustering survives the geographic constraint.
    assert with_c > 0.5 * without_c
