"""A10 — traceroute sampling bias (Lakhina et al.)."""

import math

from conftest import run_once

from repro.experiments import run_a10


def test_a10_sampling_bias(benchmark, record_experiment):
    result = run_once(benchmark, run_a10, n=1500, mean_degree=16.0)
    record_experiment(result)
    # Shape: the ground truth has no internet-like tail...
    true_gamma = result.notes["true_gamma"]
    assert math.isnan(true_gamma) or true_gamma > 4.0
    # ...but one monitor's view looks like an AS map (the famous artifact)...
    assert result.notes["illusion_present"] == 1.0
    assert result.notes["few_monitor_gamma"] < 3.5
    assert result.notes["few_monitor_gini"] > result.notes["true_gini"] + 0.1
    # ...and monitor diversity dissolves the illusion.
    many_gamma = result.notes["many_monitor_gamma"]
    assert math.isnan(many_gamma) or many_gamma > result.notes["few_monitor_gamma"] + 1.0
