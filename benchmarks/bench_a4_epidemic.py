"""A4 — SIS epidemic threshold (Pastor-Satorras–Vespignani)."""

from conftest import run_once

from repro.experiments import run_a4


def test_a4_epidemic_threshold(benchmark, record_experiment):
    result = run_once(benchmark, run_a4, n=1000)
    record_experiment(result)
    # Shape: the heavy-tailed maps sustain an endemic state at infection
    # rates well below the ER onset (the vanishing-threshold result)...
    assert result.notes["reference_onset_beta"] < result.notes["er_onset_beta"]
    assert result.notes["pfp_onset_beta"] <= result.notes["reference_onset_beta"] * 2
    # ...and the spectral prediction beta_c = mu/lambda1 sits at or below
    # the observed onset.
    assert result.notes["reference_spectral_threshold"] <= (
        result.notes["reference_onset_beta"] * 2.5
    )
