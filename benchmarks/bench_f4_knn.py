"""F4 — normalized knn(k) degree-correlation figure."""

from conftest import run_once

from repro.experiments import run_f4


def test_f4_knn_spectrum(benchmark, record_experiment):
    result = run_once(benchmark, run_f4, n=1500, seed=3)
    record_experiment(result)
    headers, rows = result.tables["degree correlations"]
    r = {row[0]: row[1] for row in rows}
    # Shape: reference and weighted-growth models are disassortative...
    assert result.notes["reference_assortativity"] < -0.1
    assert r["serrano"] < -0.1
    assert r["pfp"] < -0.1
    # ...plain BA is much closer to neutral...
    assert r["barabasi-albert"] > r["serrano"] + 0.05
    # ...and distance constraints push r further negative.
    assert result.notes["distance_disassortativity_shift"] < 0.02
