"""Generation-engine shoot-out: python vs vector growth kernels.

One run per (model, size, engine) cell over every generator family that
implements the engine contract, reported as wall-clock and nodes/sec.
The table is written to ``output/generators.txt``; the acceptance floor —
median speedup >= 2x across the registry at the full paper scale
(n = 11000) — lives in ``perf_floors.json`` (``generators-median-speedup``)
and is enforced against the published ``median_speedup`` value by the
perf fixture.

Draw-order-preserving families additionally get an oracle check here
(identical fingerprints from both engines), so a timing run can never
silently report a speedup for a divergent kernel.
"""

import statistics
import time

import pytest

from repro.core.report import format_table
from repro.generators import (
    AlbertBarabasiGenerator,
    BarabasiAlbertGenerator,
    BianconiBarabasiGenerator,
    BriteGenerator,
    GlpGenerator,
    InetGenerator,
    PfpGenerator,
    PlrgGenerator,
    SerranoGenerator,
    TransitStubGenerator,
    WaxmanGenerator,
)

SIZES = (1000, 5000, 11000)
FULL_SCALE = 11000

FAMILIES = (
    ("albert-barabasi", lambda e: AlbertBarabasiGenerator(engine=e)),
    ("barabasi-albert", lambda e: BarabasiAlbertGenerator(m=2, engine=e)),
    ("bianconi-barabasi", lambda e: BianconiBarabasiGenerator(m=2, engine=e)),
    ("brite", lambda e: BriteGenerator(engine=e)),
    ("glp", lambda e: GlpGenerator(engine=e)),
    ("inet", lambda e: InetGenerator(engine=e)),
    ("pfp", lambda e: PfpGenerator(engine=e)),
    ("plrg", lambda e: PlrgGenerator(engine=e)),
    ("serrano", lambda e: SerranoGenerator(engine=e)),
    ("transit-stub", lambda e: TransitStubGenerator(engine=e)),
    ("waxman", lambda e: WaxmanGenerator(engine=e)),
)


def _timed_generate(make, engine, n, seed):
    generator = make(engine)
    start = time.perf_counter()
    graph = generator.generate(n, seed=seed)
    elapsed = time.perf_counter() - start
    return graph, elapsed, generator


def test_generator_engine_speedups(perf, record_text):
    perf.bench_id = "generators"
    rows = []
    full_scale_speedups = {}
    for name, make in FAMILIES:
        for n in SIZES:
            python_graph, python_s, _ = _timed_generate(make, "python", n, seed=1)
            vector_graph, vector_s, generator = _timed_generate(
                make, "vector", n, seed=1
            )
            # transit-stub rounds n down to a whole hierarchy; all other
            # families hit n exactly — and the engines must always agree.
            assert python_graph.num_nodes == vector_graph.num_nodes
            assert python_graph.num_nodes >= 0.9 * n
            if not generator.engine_sensitive:
                assert (
                    python_graph.fingerprint() == vector_graph.fingerprint()
                ), name
            speedup = python_s / vector_s
            rows.append(
                [
                    name,
                    n,
                    python_s,
                    vector_s,
                    n / python_s,
                    n / vector_s,
                    speedup,
                ]
            )
            if n == FULL_SCALE:
                full_scale_speedups[name] = speedup
    table = format_table(
        [
            "model",
            "n",
            "python s",
            "vector s",
            "py nodes/s",
            "vec nodes/s",
            "speedup",
        ],
        rows,
        title="generation engines: python vs vector (seed=1, one run per cell)",
    )
    median = statistics.median(full_scale_speedups.values())
    summary = (
        f"median speedup across {len(full_scale_speedups)} families"
        f" at n={FULL_SCALE}: {median:.2f}x"
    )
    print()
    print(table)
    print(summary)
    record_text("generators.txt", table + "\n" + summary)
    perf.params["full_scale"] = FULL_SCALE
    perf.values["median_speedup"] = median
