"""F2 — degree CCDF figure across the full roster."""

import math

from conftest import run_once

from repro.experiments import run_f2


def test_f2_degree_ccdf(benchmark, record_experiment):
    result = run_once(benchmark, run_f2, n=1200, seed=1)
    record_experiment(result)
    # Shape: the reference has an AS-like exponent...
    assert 1.9 < result.notes["reference_gamma"] < 2.5
    # ...and most heavy-tail models land in the AS-like band while the
    # random/geometric baselines do not.
    assert result.notes["models_with_as_like_tail"] >= 5
    headers, rows = result.tables["fitted degree exponents"]
    gamma_by_model = {row[0]: row[3] for row in rows}
    for flat_model in ("erdos-renyi", "waxman", "transit-stub"):
        gamma = gamma_by_model[flat_model]
        assert isinstance(gamma, float)
        assert math.isnan(gamma) or gamma > 2.8, flat_model
