"""A11 — community structure across models."""

from conftest import run_once

from repro.experiments import run_a11


def test_a11_community_structure(benchmark, record_experiment):
    result = run_once(benchmark, run_a11, n=1500)
    record_experiment(result)
    # Shape: explicit domain hierarchy is strongly modular...
    assert result.notes["q_transit_stub"] > 0.6
    # ...while hub-stitched topologies collapse into one label under
    # label propagation.
    assert result.notes["q_barabasi_albert"] < 0.15
    assert result.notes["reference_modularity"] < 0.3
    headers, rows = result.tables["modularity by model"]
    by_model = {row[0]: row for row in rows}
    assert by_model["transit-stub"][1] > 10  # many recovered stub domains
