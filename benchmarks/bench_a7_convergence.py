"""A7 — BGP convergence dynamics on growing topologies."""

from conftest import run_once

from repro.experiments import run_a7


def test_a7_bgp_convergence(benchmark, record_experiment):
    result = run_once(
        benchmark, run_a7, sizes=(300, 600, 1200, 2400), destinations_per_size=3
    )
    record_experiment(result)
    # Shape: the small world keeps rounds flat across an order of
    # magnitude in size...
    assert result.notes["rounds_largest"] <= result.notes["rounds_smallest"] + 3
    assert result.notes["rounds_largest"] < 12
    # ...messages stay near-linear in network size (each edge carries O(1)
    # advertisements per prefix)...
    assert result.notes["message_scaling_exponent"] < 1.6
    assert result.notes["max_messages_per_edge"] < 3.0
    # ...and hub failure reconvergence stays as shallow as cold start.
    headers, rows = result.tables["convergence scaling"]
    for row in rows:
        assert row[5] <= row[2] + 3
