"""F7 — normalized rich-club spectrum figure."""

from conftest import run_once

from repro.experiments import run_f7


def test_f7_rich_club(benchmark, record_experiment):
    result = run_once(benchmark, run_f7, n=1200, seed=6)
    record_experiment(result)
    headers, rows = result.tables["top-decile normalized rich club"]
    rho = {row[0]: row[1] for row in rows}
    # Shape: the feedback models maintain a rich club at or above the
    # degree-preserving null; plain BA does not exceed it (Colizza 2006).
    assert rho["pfp"] > 0.9
    assert result.notes["pfp_minus_ba_rho"] > -0.2
    assert rho["barabasi-albert"] < 1.3
