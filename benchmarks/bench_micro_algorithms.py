"""Microbenchmarks for the core algorithms.

Unlike the experiment benches (one run, shape assertions), these measure
raw algorithm throughput with repeated rounds — the numbers to watch when
optimizing the engine.  Graphs are built once per session.
"""

import pytest

from repro.generators import BarabasiAlbertGenerator, SerranoGenerator
from repro.graph import (
    approximate_betweenness,
    core_numbers,
    cycle_counts_3_4_5,
    path_length_distribution,
    rich_club_coefficient,
    triangles_per_node,
)
from repro.stats import FenwickSampler


@pytest.fixture(scope="module")
def ba_2k():
    return BarabasiAlbertGenerator(m=2).generate(2000, seed=1)


@pytest.fixture(scope="module")
def ba_10k():
    return BarabasiAlbertGenerator(m=2).generate(10_000, seed=1)


def test_micro_fenwick_sampling(benchmark):
    sampler = FenwickSampler(range(1, 10_001), seed=1)

    def draw_batch():
        for _ in range(10_000):
            sampler.sample()

    benchmark(draw_batch)


def test_micro_kcore_10k(benchmark, ba_10k):
    result = benchmark(core_numbers, ba_10k)
    assert max(result.values()) == 2


def test_micro_triangles_2k(benchmark, ba_2k):
    result = benchmark(triangles_per_node, ba_2k)
    assert sum(result.values()) > 0


def test_micro_cycles_2k(benchmark, ba_2k):
    result = benchmark(cycle_counts_3_4_5, ba_2k)
    assert result[3] > 0


def test_micro_betweenness_pivots(benchmark, ba_2k):
    result = benchmark(
        approximate_betweenness, ba_2k, num_pivots=50, seed=2
    )
    assert max(result.values()) > 0


def test_micro_sampled_paths(benchmark, ba_10k):
    stats = benchmark(
        path_length_distribution, ba_10k, max_sources=50, seed=3
    )
    assert stats.mean > 1

def test_micro_rich_club_2k(benchmark, ba_2k):
    result = benchmark(rich_club_coefficient, ba_2k)
    assert result


def test_micro_serrano_generation(benchmark):
    generator = SerranoGenerator()
    graph = benchmark.pedantic(
        generator.generate, args=(1000,), kwargs={"seed": 4}, rounds=2, iterations=1
    )
    assert graph.num_nodes == 1000
