"""Microbenchmarks for the core algorithms.

Unlike the experiment benches (one run, shape assertions), these measure
raw algorithm throughput with repeated rounds — the numbers to watch when
optimizing the engine.  Graphs are built once per session.
"""

import time

import pytest

from repro.core.report import format_table
from repro.generators import BarabasiAlbertGenerator, SerranoGenerator
from repro.graph import (
    approximate_betweenness,
    betweenness_centrality,
    core_numbers,
    cycle_counts_3_4_5,
    path_length_distribution,
    rich_club_coefficient,
    triangles_per_node,
)
from repro.graph.correlations import degree_assortativity, knn_by_degree
from repro.graph.shortest_paths import average_path_length, eccentricities
from repro.stats import FenwickSampler


@pytest.fixture(scope="module")
def ba_2k():
    return BarabasiAlbertGenerator(m=2).generate(2000, seed=1)


@pytest.fixture(scope="module")
def ba_10k():
    return BarabasiAlbertGenerator(m=2).generate(10_000, seed=1)


def test_micro_fenwick_sampling(benchmark):
    sampler = FenwickSampler(range(1, 10_001), seed=1)

    def draw_batch():
        for _ in range(10_000):
            sampler.sample()

    benchmark(draw_batch)


def test_micro_kcore_10k(benchmark, ba_10k):
    result = benchmark(core_numbers, ba_10k)
    assert max(result.values()) == 2


def test_micro_triangles_2k(benchmark, ba_2k):
    result = benchmark(triangles_per_node, ba_2k)
    assert sum(result.values()) > 0


def test_micro_cycles_2k(benchmark, ba_2k):
    result = benchmark(cycle_counts_3_4_5, ba_2k)
    assert result[3] > 0


def test_micro_betweenness_pivots(benchmark, ba_2k):
    result = benchmark(
        approximate_betweenness, ba_2k, num_pivots=50, seed=2
    )
    assert max(result.values()) > 0


def test_micro_sampled_paths(benchmark, ba_10k):
    stats = benchmark(
        path_length_distribution, ba_10k, max_sources=50, seed=3
    )
    assert stats.mean > 1

def test_micro_rich_club_2k(benchmark, ba_2k):
    result = benchmark(rich_club_coefficient, ba_2k)
    assert result


#: (label, callable(graph, backend), required speedup) for the CSR shoot-out.
#: The ≥5x floors are the PR's acceptance bars on the two heaviest kernels;
#: the remaining rows are recorded without a floor (tiny absolute times make
#: their ratios noisy).
_CSR_KERNELS = (
    ("average_path_length", lambda g, b: average_path_length(g, backend=b), 5.0),
    ("betweenness (exact)", lambda g, b: betweenness_centrality(g, backend=b), 5.0),
    (
        "betweenness (50 pivots)",
        lambda g, b: approximate_betweenness(g, num_pivots=50, seed=2, backend=b),
        None,
    ),
    ("eccentricities", lambda g, b: eccentricities(g, backend=b), None),
    ("triangles_per_node", lambda g, b: triangles_per_node(g, backend=b), None),
    ("core_numbers", lambda g, b: core_numbers(g, backend=b), None),
    ("rich_club_coefficient", lambda g, b: rich_club_coefficient(g, backend=b), None),
    ("knn_by_degree", lambda g, b: knn_by_degree(g, backend=b), None),
    ("degree_assortativity", lambda g, b: degree_assortativity(g, backend=b), None),
)


def test_micro_csr_kernel_speedups(record_text):
    """Python vs CSR backend, per kernel, on one BA graph (n=3000).

    Oracle first — both backends must return the same values — then the
    wall-clock table is written to ``output/csr_kernels.txt`` and the two
    headline kernels are held to the ≥5x acceptance floor.
    """
    graph = BarabasiAlbertGenerator(m=2).generate(3000, seed=1)
    rows = []
    floors = {}
    for label, kernel, floor in _CSR_KERNELS:
        start = time.perf_counter()
        python_value = kernel(graph, "python")
        python_s = time.perf_counter() - start
        start = time.perf_counter()
        csr_value = kernel(graph, "csr")
        csr_s = time.perf_counter() - start
        if isinstance(python_value, dict) and python_value and isinstance(
            next(iter(python_value.values())), float
        ):
            for key, expected in python_value.items():
                assert abs(csr_value[key] - expected) <= 1e-9 * max(
                    1.0, abs(expected)
                ), (label, key)
        else:
            assert python_value == csr_value, label
        speedup = python_s / csr_s
        rows.append([label, python_s, csr_s, speedup])
        if floor is not None:
            floors[label] = (speedup, floor)
    table = format_table(
        ["kernel", "python s", "csr s", "speedup"],
        rows,
        title="CSR kernel shoot-out (barabasi-albert m=2 n=3000 seed=1)",
    )
    print()
    print(table)
    record_text("csr_kernels.txt", table)
    for label, (speedup, floor) in floors.items():
        assert speedup >= floor, (label, speedup)


def test_micro_serrano_generation(benchmark):
    generator = SerranoGenerator()
    graph = benchmark.pedantic(
        generator.generate, args=(1000,), kwargs={"seed": 4}, rounds=2, iterations=1
    )
    assert graph.num_nodes == 1000
