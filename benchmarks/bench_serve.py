"""Benchmark: warm-path serving vs cold one-shot invocation.

The serving layer's economic case (ISSUE 10): a topology service fields
millions of small summarize calls whose answers barely change — paying a
full generate+measure per request (what a cold one-shot CLI invocation
does) is the worst honest baseline, and the warm service must beat it by
a wide margin on repeat traffic.

The bench times both sides on the same request population:

* **cold** — every request builds the generator, generates the topology,
  and computes the full battery in-process, no cache (a conservative
  stand-in for one-shot CLI invocation: it doesn't even charge the
  interpreter startup a real CLI call would pay);
* **warm** — the same keys served over HTTP by a 2-worker service after
  one priming pass, so steady-state requests are coalesced cache reads
  with zero generations (the service's ``/stats`` deltas prove it).

Floors in ``perf_floors.json`` gate the headline speedup (>= 5x), the
coalesce evidence (>= 1 hit under barrier-synchronized identical load),
the warm p99, and the zero-generation invariant.
"""

import time

from repro.core import make_generator, summarize
from repro.serve import ServeClient, ServeDispatcher, run_load, running_server

MODELS = ("albert-barabasi", "waxman")
N = 600
SEEDS = 2
JOBS = 2
WARM_REQUESTS = 60
THREADS = 6
DUPLICATE_ROUNDS = 3


def _cold_one_shot(model, n, seed):
    """One cold request: fresh generator, full battery, nothing reused."""
    generator = make_generator(model)
    graph = generator.generate(n, seed=seed)
    return summarize(graph, seed=seed)


def test_serve_warm_path(perf, record_text, tmp_path):
    keys = [(model, seed) for model in MODELS for seed in range(SEEDS)]

    # Cold side: every request pays generation + full battery.
    cold_started = time.perf_counter()
    cold_values = {key: _cold_one_shot(key[0], N, key[1]) for key in keys}
    cold_seconds = time.perf_counter() - cold_started
    cold_per_request = cold_seconds / len(keys)

    dispatcher = ServeDispatcher(
        jobs=JOBS, root=tmp_path / "serve-root", journal=tmp_path / "serve.jsonl"
    )
    try:
        with running_server(dispatcher) as url:
            client = ServeClient(url)
            # Priming pass: first touch generates + publishes each topology
            # once; everything after this line is the steady state.
            for model, seed in keys:
                primed = client.summarize(model, N, seed=seed)
                assert primed["values"] == cold_values[(model, seed)].as_dict()
            report = run_load(
                client,
                requests=WARM_REQUESTS,
                threads=THREADS,
                models=MODELS,
                n=N,
                seeds=SEEDS,
                duplicate_rounds=DUPLICATE_ROUNDS,
            )
    finally:
        dispatcher.shutdown()

    assert report.errors == 0
    warm_latencies = report.all_latencies
    warm_per_request = sum(warm_latencies) / len(warm_latencies)
    speedup = cold_per_request / warm_per_request

    perf.params.update(
        models=",".join(MODELS), n=N, seeds=SEEDS, jobs=JOBS,
        requests=report.requests, threads=THREADS,
    )
    perf.values["warm_speedup"] = speedup
    perf.values["cold_seconds_per_request"] = cold_per_request
    perf.values["warm_seconds_per_request"] = warm_per_request
    perf.values["p50_seconds"] = report.p(50)
    perf.values["p99_seconds"] = report.p(99)
    perf.values["rps"] = report.rps
    perf.values["coalesce_hits"] = report.coalesce_hits
    # /stats counter delta across the warm phase: the floor pins this to
    # zero — a steady-state service never regenerates a topology.
    perf.values["warm_generations"] = report.generations

    lines = [
        f"warm-path serving vs cold one-shot invocation "
        f"({len(keys)} keys, n={N}, jobs={JOBS}, {report.requests} warm requests)",
        f"  cold: {cold_per_request * 1000:9.1f} ms/request "
        f"(generate + full battery, no cache)",
        f"  warm: {warm_per_request * 1000:9.1f} ms/request  "
        f"p50={report.p(50) * 1000:.1f}ms p99={report.p(99) * 1000:.1f}ms "
        f"{report.rps:.0f} req/s",
        f"  speedup: {speedup:8.1f}x   coalesce_hits={report.coalesce_hits:.0f} "
        f"warm_generations={report.generations:.0f} "
        f"cache_hit_rate={report.cache_hit_rate:.3f}",
    ]
    record_text("serve.txt", "\n".join(lines))
