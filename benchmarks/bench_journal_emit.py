"""Microbenchmark: journal emit throughput, held handle vs reopen-per-event.

The original ``RunJournal.emit`` opened and closed the file for every
event — two syscalls plus buffer setup per line.  The current
implementation holds one line-buffered handle (still flushing every line,
so crash-safety is unchanged).  This bench writes the same event stream
both ways and records the throughput ratio; the held handle must not be
slower, and in practice is several times faster.
"""

import json
import time

from repro.core import RunJournal
from repro.experiments.base import ExperimentResult

EVENTS = 5000


def _legacy_emit(path, event, **fields):
    """The pre-observability emit: one open/close per event."""
    record = {"ts": round(time.time(), 6), "event": event}
    record.update(fields)
    line = json.dumps(record, sort_keys=False, default=repr)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def test_journal_emit_throughput(tmp_path, record_experiment):
    legacy_path = tmp_path / "legacy.jsonl"
    start = time.perf_counter()
    for index in range(EVENTS):
        _legacy_emit(
            legacy_path, "unit_finish", model="glp", replicate=index, seconds=0.1
        )
    legacy_seconds = time.perf_counter() - start

    journal = RunJournal(tmp_path / "held.jsonl")
    start = time.perf_counter()
    for index in range(EVENTS):
        journal.emit("unit_finish", model="glp", replicate=index, seconds=0.1)
    held_seconds = time.perf_counter() - start
    journal.close()

    # Same stream, same crash-safety, fewer syscalls: the held handle must
    # beat reopening per event (generous margin to absorb CI noise).
    assert held_seconds < legacy_seconds
    speedup = legacy_seconds / held_seconds
    assert speedup > 1.2, f"held-handle emit only {speedup:.2f}x faster"

    # Both files carry the identical, fully-flushed event stream.
    assert len(journal.events()) == EVENTS
    assert len(RunJournal.read(legacy_path)) == EVENTS

    result = ExperimentResult(
        experiment_id="JOURNAL_EMIT",
        title="journal emit throughput (held line-buffered handle)",
    )
    result.add_table(
        f"{EVENTS} events",
        ["mode", "seconds", "events/s"],
        [
            ["reopen per event", legacy_seconds, EVENTS / legacy_seconds],
            ["held handle", held_seconds, EVENTS / held_seconds],
        ],
    )
    result.notes["speedup"] = round(speedup, 2)
    record_experiment(result)
