"""F3 — clustering spectrum c(k) figure."""

from conftest import run_once

from repro.experiments import run_f3


def test_f3_clustering_spectrum(benchmark, record_experiment):
    result = run_once(benchmark, run_f3, n=1500, seed=2)
    record_experiment(result)
    headers, rows = result.tables["c(k) decay slopes (c ~ k^-s)"]
    slope = {row[0]: row[2] for row in rows}
    mean_c = {row[0]: row[1] for row in rows}
    # Shape: the reference's spectrum decays (hierarchy)...
    assert result.notes["reference_decay_slope"] > 0.4
    # ...the weighted-growth model reproduces a decaying spectrum...
    assert slope["serrano"] > 0.3
    # ...while plain BA is much flatter and lower.
    assert mean_c["barabasi-albert"] < mean_c["serrano"]
