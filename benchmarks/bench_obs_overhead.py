"""Microbenchmark: what disabled instrumentation costs a battery unit.

The obs design contract is that a disabled tracer is close enough to free
that instrumentation can stay on permanently in library code.  This bench
measures the two halves of that claim directly:

* the per-call cost of a disabled span (``get_tracer().span(...)`` handing
  back the shared ``NULL_SPAN``) and of a counter increment, measured over
  a tight loop;
* the number of instrumentation touch points one real battery unit
  actually executes (counted with an enabled tracer + registry);

and publishes the implied instrumentation share of a real unit's wall
time; the under-5% gate lives in ``perf_floors.json`` (``obs-overhead``)
and is enforced by the perf fixture.  Measuring the implied share,
rather than differencing two noisy end-to-end timings, keeps the gate
stable on loaded CI boxes while still bounding the number that matters.
"""

import time

from repro.core import run_battery
from repro.experiments.base import ExperimentResult
from repro.obs import MetricsRegistry, Tracer, get_tracer, set_registry, set_tracer

CALLS = 200_000
FAST = {"min_tail": 20, "path_samples": 50, "path_sample_threshold": 100}


def _per_call_seconds(fn, calls=CALLS, repeats=5):
    """Best-of-N per-call cost of *fn* over a tight loop."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / calls


def test_disabled_tracer_overhead_under_five_percent(record_experiment, perf):
    perf.bench_id = "obs_overhead"
    previous_tracer = set_tracer(Tracer(enabled=False))
    previous_registry = set_registry(MetricsRegistry())
    try:
        # Per-call cost of the disabled instrumentation primitives.
        tracer = get_tracer()
        disabled_span = _per_call_seconds(lambda: tracer.span("x", model="glp"))
        registry = MetricsRegistry()
        counter = registry.counter("bench.calls")
        counter_inc = _per_call_seconds(counter.inc)

        # How many touch points one real unit executes, and how long the
        # unit takes: run the same single-model battery traced and timed.
        probe_tracer = Tracer(enabled=True)
        probe_registry = MetricsRegistry()
        set_registry(probe_registry)
        start = time.perf_counter()
        run_battery(["glp"], n=400, seeds=1, tracer=probe_tracer, **FAST)
        unit_seconds = time.perf_counter() - start
        span_calls = len(probe_tracer.spans)
        counter_calls = sum(
            probe_registry.snapshot()["counters"].values()
        )  # every inc() is one touch

        implied = (
            span_calls * disabled_span + counter_calls * counter_inc
        ) / unit_seconds
        perf.values["implied_overhead"] = implied

        result = ExperimentResult(
            experiment_id="OBS_OVERHEAD",
            title="disabled-tracer overhead on one battery unit",
        )
        result.add_table(
            "per-call cost (best of 5 x 200k calls)",
            ["primitive", "ns/call"],
            [
                ["disabled span", disabled_span * 1e9],
                ["counter inc", counter_inc * 1e9],
            ],
        )
        result.add_table(
            "implied share of one glp unit (n=400)",
            ["spans", "counter incs", "unit seconds", "implied overhead"],
            [[span_calls, int(counter_calls), unit_seconds, implied]],
        )
        result.notes["implied_overhead_pct"] = round(implied * 100, 4)
        record_experiment(result)
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)
