"""F1 — growth-rate figure: fit alpha, beta, delta to the timeline."""

from conftest import run_once

from repro.experiments import run_f1


def test_f1_growth_rates(benchmark, record_experiment):
    result = run_once(benchmark, run_f1)
    record_experiment(result)
    # Shape: rates recovered near published values, correct ordering.
    assert abs(result.notes["alpha"] - 0.036) < 0.004
    assert abs(result.notes["beta"] - 0.0304) < 0.004
    assert abs(result.notes["delta"] - 0.0330) < 0.004
    assert result.notes["ordering_alpha_gt_delta"] == 1.0
    assert result.notes["ordering_delta_gt_beta"] == 1.0
    # Derived: average degree grows slowly with N (delta/beta - 1 ~ 0.09).
    assert 0.0 < result.notes["avg_degree_exponent"] < 0.25
