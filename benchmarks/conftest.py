"""Benchmark harness plumbing.

Each bench runs one experiment exactly once under pytest-benchmark timing
(rounds=1 — these are end-to-end experiment harnesses, not
microbenchmarks), asserts the experiment's expected *shape*, and writes
the rendered paper-style output to ``benchmarks/output/<id>.txt`` so the
regenerated tables/figures persist as artifacts.

Perf telemetry rides on every bench automatically: the autouse ``perf``
fixture times the test, samples peak RSS, diffs the ambient metrics
registry across the run, and writes a schema-valid
``output/BENCH_<id>.json`` record (:mod:`repro.obs.perf`) when the test
passes — so all bench harnesses gain machine-readable output without
per-script changes.  Benches publish their headline measurements into
``perf.values`` (median speedups, RSS budgets, overhead shares); the
declarative floors in ``perf_floors.json`` are then enforced here, after
the test body, instead of as ad-hoc asserts inside each script, and
re-checked fleet-wide by ``repro perf compare``.

Every ``.txt`` artifact is stamped with a provenance header (bench id,
git commit, UTC timestamp) so a table on disk is traceable to the commit
that produced it.
"""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.obs import diff_snapshots, get_registry, peak_rss_kb
from repro.obs.perf import (
    BenchRecord,
    check_floors,
    environment_fingerprint,
    floors_for,
    load_floors,
    sanitize_bench_id,
)

OUTPUT_DIR = Path(__file__).parent / "output"
FLOORS_PATH = Path(__file__).parent / "perf_floors.json"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def perf_floors():
    """The declarative floors, loaded once per session."""
    return load_floors(FLOORS_PATH)


@pytest.fixture(scope="session")
def bench_environment():
    """One environment fingerprint per session (git call, version probes)."""
    return environment_fingerprint(Path(__file__).parent)


def artifact_header(bench_id: str, environment) -> str:
    """The provenance line stamped onto every ``.txt`` artifact."""
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    return (
        f"# bench={bench_id} commit={environment['git_commit']} "
        f"generated={stamp}"
    )


class PerfCapture:
    """What one bench test publishes into its record.

    ``values`` holds the floor-gated measurements, ``params`` free-form
    run parameters; ``bench_id`` defaults to ``<module>__<test>`` and the
    floor-bearing benches pin short explicit ids.
    """

    def __init__(self, bench_id: str):
        self.bench_id = bench_id
        self.values = {}
        self.params = {}


def _default_bench_id(request) -> str:
    module = Path(str(request.node.fspath)).stem
    if module.startswith("bench_"):
        module = module[len("bench_"):]
    name = request.node.name
    if name.startswith("test_"):
        name = name[len("test_"):]
    return sanitize_bench_id(f"{module}__{name}")


@pytest.hookimpl(tryfirst=True, hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stash each phase's report on the item so fixture teardown can tell
    a passed bench (record it) from a failed one (don't poison records)."""
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"rep_{report.when}", report)


@pytest.fixture(autouse=True)
def perf(request, output_dir, perf_floors, bench_environment):
    """Autouse telemetry bracket around every bench test.

    On a passed test: build the :class:`BenchRecord` (wall seconds, peak
    RSS, backend/engine selection, cache-counter and full metrics-registry
    deltas, environment fingerprint), write ``BENCH_<id>.json``, then
    enforce any declarative floors bound to this bench id — a violated
    floor fails the bench here, with the record already on disk for the
    post-mortem.
    """
    capture = PerfCapture(_default_bench_id(request))
    if getattr(request.node, "callspec", None) is not None:
        for key, value in request.node.callspec.params.items():
            if isinstance(value, (int, float, str, bool)):
                capture.params[key] = value
    before = get_registry().snapshot()
    start = time.perf_counter()
    yield capture
    wall = time.perf_counter() - start
    report = getattr(request.node, "rep_call", None)
    if report is None or not report.passed:
        return
    delta = diff_snapshots(get_registry().snapshot(), before)
    cache = {
        label: delta["counters"].get(counter, 0)
        for label, counter in (
            ("hits", "cache.hit"),
            ("misses", "cache.miss"),
            ("writes", "cache.write"),
            ("corrupt", "cache.corrupt"),
        )
    }
    record = BenchRecord(
        bench_id=capture.bench_id,
        params=capture.params,
        values={key: float(value) for key, value in capture.values.items()},
        wall_seconds=wall,
        peak_rss_kb=peak_rss_kb(),
        backend=os.environ.get("REPRO_BACKEND", "auto"),
        engine=os.environ.get("REPRO_ENGINE", "auto"),
        cache=cache,
        metrics=delta,
        environment=bench_environment,
    )
    record.write(output_dir)
    bound = floors_for(capture.bench_id, perf_floors)
    failures = [
        check.describe()
        for check in check_floors({capture.bench_id: record}, bound)
        if check.status == "violation"
    ]
    if failures:
        pytest.fail(
            "declarative perf floor violated:\n  " + "\n  ".join(failures),
            pytrace=False,
        )


@pytest.fixture
def record_text(output_dir, perf, bench_environment):
    """Write a text artifact to the output directory, header-stamped."""

    def _record(filename: str, text: str) -> Path:
        path = output_dir / filename
        header = artifact_header(perf.bench_id, bench_environment)
        path.write_text(
            header + "\n" + text.rstrip("\n") + "\n", encoding="utf-8"
        )
        return path

    return _record


@pytest.fixture
def record_experiment(record_text):
    """Write an ExperimentResult's rendering to the output directory."""

    def _record(result) -> str:
        text = result.render()
        record_text(f"{result.experiment_id.lower()}.txt", text)
        print()
        print(text)
        return text

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run *fn* exactly once under benchmark timing and return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
