"""Benchmark harness plumbing.

Each bench runs one experiment exactly once under pytest-benchmark timing
(rounds=1 — these are end-to-end experiment harnesses, not microbenchmarks),
asserts the experiment's expected *shape*, and writes the rendered
paper-style output to ``benchmarks/output/<id>.txt`` so the regenerated
tables/figures persist as artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def record_experiment(output_dir):
    """Write an ExperimentResult's rendering to the output directory."""

    def _record(result) -> str:
        text = result.render()
        (output_dir / f"{result.experiment_id.lower()}.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        print()
        print(text)
        return text

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run *fn* exactly once under benchmark timing and return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
