"""T1 — the generator comparison table (Bu–Towsley-style shoot-out).

Also benchmarks the battery runner behind T1: a cold cached run, a warm
rerun (every cell served from the content-addressed cache) and a parallel
cold run, asserting the reported numbers are identical in every mode.
"""

import os
import time

from conftest import run_once

from repro.core.report import format_table
from repro.experiments import run_t1


def test_t1_generator_comparison(benchmark, record_experiment):
    result = run_once(benchmark, run_t1, n=1000, seeds=2)
    record_experiment(result)
    headers, ranking = result.tables["ranking (best first)"]
    order = [name for name, _ in ranking]
    scores = dict(ranking)
    # Shape: the weighted-growth models lead the field...
    assert order[0].startswith("serrano")
    assert "serrano" in order[:3] and "serrano-distance" in order[:3]
    # ...degree-driven AS-fitted models beat plain BA...
    assert scores["glp"] < scores["barabasi-albert"]
    assert scores["pfp"] < scores["barabasi-albert"]
    # ...and the no-heavy-tail baselines trail the heavy-tail field.
    for baseline in ("erdos-renyi", "waxman"):
        assert scores[baseline] > scores["glp"], baseline


def _ranks(result):
    return {k: v for k, v in result.notes.items() if k.startswith("rank_")}


def test_t1_battery_cache_and_parallel_speedup(tmp_path, output_dir):
    """Cold vs warm vs parallel T1: identical numbers, recorded speedups."""
    kwargs = dict(n=500, seeds=2)
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_t1(cache_dir=str(cache_dir), **kwargs)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_t1(cache_dir=str(cache_dir), **kwargs)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_t1(jobs=4, cache_dir=str(tmp_path / "cache-par"), **kwargs)
    parallel_s = time.perf_counter() - start

    # Oracle: every reported score is identical in all three modes.
    assert _ranks(warm) == _ranks(cold)
    assert _ranks(parallel) == _ranks(cold)
    # Warm rerun recomputes nothing.
    assert warm.notes["cache_misses"] == 0
    assert warm.notes["cache_hits"] > 0

    warm_speedup = cold_s / warm_s
    parallel_speedup = cold_s / parallel_s
    rows = [
        ["cold serial", cold_s, 1.0],
        ["warm cache", warm_s, warm_speedup],
        ["cold jobs=4", parallel_s, parallel_speedup],
    ]
    table = format_table(
        ["mode", "seconds", "speedup"], rows,
        title=f"T1 battery wall clock (n={kwargs['n']}, seeds={kwargs['seeds']}, "
              f"{os.cpu_count()} cpus)",
    )
    print()
    print(table)
    (output_dir / "t1_scaling.txt").write_text(table + "\n", encoding="utf-8")

    # A warm cache replaces all generation+metric work with JSON reads.
    assert warm_speedup >= 5.0, warm_speedup
    # Cold parallel speedup needs actual cores to show up.
    if (os.cpu_count() or 1) >= 4:
        assert parallel_speedup >= 2.0, parallel_speedup
