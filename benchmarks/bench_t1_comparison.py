"""T1 — the generator comparison table (Bu–Towsley-style shoot-out).

Also benchmarks the battery runner behind T1: a cold cached run, a warm
rerun (every cell served from the content-addressed cache) and a parallel
cold run, asserting the reported numbers are identical in every mode.
"""

import os
import time

from conftest import run_once

from repro.core.report import format_table
from repro.experiments import run_t1


def test_t1_generator_comparison(benchmark, record_experiment):
    result = run_once(benchmark, run_t1, n=1000, seeds=2)
    record_experiment(result)
    headers, ranking = result.tables["ranking (best first)"]
    order = [name for name, _ in ranking]
    scores = dict(ranking)
    # Shape: the weighted-growth models lead the field...
    assert order[0].startswith("serrano")
    assert "serrano" in order[:3] and "serrano-distance" in order[:3]
    # ...degree-driven AS-fitted models beat plain BA...
    assert scores["glp"] < scores["barabasi-albert"]
    assert scores["pfp"] < scores["barabasi-albert"]
    # ...and the no-heavy-tail baselines trail the heavy-tail field.
    for baseline in ("erdos-renyi", "waxman"):
        assert scores[baseline] > scores["glp"], baseline


def _ranks(result):
    return {k: v for k, v in result.notes.items() if k.startswith("rank_")}


def test_t1_battery_cache_and_parallel_speedup(tmp_path, record_text):
    """Cold vs warm vs parallel T1: identical numbers, recorded speedups."""
    kwargs = dict(n=500, seeds=2)
    cache_dir = tmp_path / "cache"

    start = time.perf_counter()
    cold = run_t1(cache_dir=str(cache_dir), **kwargs)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_t1(cache_dir=str(cache_dir), **kwargs)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_t1(jobs=4, cache_dir=str(tmp_path / "cache-par"), **kwargs)
    parallel_s = time.perf_counter() - start

    # Oracle: every reported score is identical in all three modes.
    assert _ranks(warm) == _ranks(cold)
    assert _ranks(parallel) == _ranks(cold)
    # Warm rerun recomputes nothing.
    assert warm.notes["cache_misses"] == 0
    assert warm.notes["cache_hits"] > 0

    warm_speedup = cold_s / warm_s
    parallel_speedup = cold_s / parallel_s
    rows = [
        ["cold serial", cold_s, 1.0],
        ["warm cache", warm_s, warm_speedup],
        ["cold jobs=4", parallel_s, parallel_speedup],
    ]
    table = format_table(
        ["mode", "seconds", "speedup"], rows,
        title=f"T1 battery wall clock (n={kwargs['n']}, seeds={kwargs['seeds']}, "
              f"{os.cpu_count()} cpus)",
    )
    print()
    print(table)
    record_text("t1_scaling.txt", table)

    # A warm cache replaces all generation+metric work with JSON reads.
    assert warm_speedup >= 5.0, warm_speedup
    # Cold parallel speedup needs actual cores to show up.
    if (os.cpu_count() or 1) >= 4:
        assert parallel_speedup >= 2.0, parallel_speedup


def test_t1_battery_csr_speedup(tmp_path, record_text):
    """Full compare_models battery, python vs CSR: identical scores, ≥2x.

    "Full" means no sampling shortcuts: ``path_sample_threshold`` is lifted
    so the paths group runs exact all-source BFS — the workload the CSR
    kernels exist for.  The reference map is prewarmed so neither timed run
    pays its one-off construction, and each backend gets its own cold cache
    (cells are backend-neutral by design, so a shared directory would let
    the second run ride the first run's cells and time nothing).
    """
    from repro.core.battery import compare_models
    from repro.datasets.asmap import reference_as_map
    from repro.experiments.rosters import ROSTER_ORDER, standard_roster

    roster = standard_roster(2000)
    models = {name: roster[name] for name in ROSTER_ORDER}
    kwargs = dict(n=2000, seeds=1, path_sample_threshold=10**9)
    reference_as_map(2000)

    start = time.perf_counter()
    python_run = compare_models(
        models, cache=str(tmp_path / "cache-py"), backend="python", **kwargs
    )
    python_s = time.perf_counter() - start

    start = time.perf_counter()
    csr_run = compare_models(
        models, cache=str(tmp_path / "cache-csr"), backend="csr", **kwargs
    )
    csr_s = time.perf_counter() - start

    # Oracle: the backend never changes a single reported score.
    assert csr_run.ranking() == python_run.ranking()

    speedup = python_s / csr_s
    rows = [
        ["python", python_s, 1.0],
        ["csr", csr_s, speedup],
    ]
    table = format_table(
        ["backend", "seconds", "speedup"],
        rows,
        title=f"Full battery backend wall clock (n={kwargs['n']}, "
              f"seeds={kwargs['seeds']}, exact paths, "
              f"{len(models)} models)",
    )
    print()
    print(table)
    record_text("csr_battery.txt", table)
    assert speedup >= 2.0, speedup
