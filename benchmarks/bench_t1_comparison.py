"""T1 — the generator comparison table (Bu–Towsley-style shoot-out)."""

from conftest import run_once

from repro.experiments import run_t1


def test_t1_generator_comparison(benchmark, record_experiment):
    result = run_once(benchmark, run_t1, n=1000, seeds=2)
    record_experiment(result)
    headers, ranking = result.tables["ranking (best first)"]
    order = [name for name, _ in ranking]
    scores = dict(ranking)
    # Shape: the weighted-growth models lead the field...
    assert order[0].startswith("serrano")
    assert "serrano" in order[:3] and "serrano-distance" in order[:3]
    # ...degree-driven AS-fitted models beat plain BA...
    assert scores["glp"] < scores["barabasi-albert"]
    assert scores["pfp"] < scores["barabasi-albert"]
    # ...and the no-heavy-tail baselines trail the heavy-tail field.
    for baseline in ("erdos-renyi", "waxman"):
        assert scores[baseline] > scores["glp"], baseline
