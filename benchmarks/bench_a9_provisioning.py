"""A9 — provisioning adequacy: does supply sit where demand lands?"""

from conftest import run_once

from repro.experiments import run_a9


def test_a9_provisioning_adequacy(benchmark, record_experiment):
    result = run_once(benchmark, run_a9, n=1200, num_flows=2500)
    record_experiment(result)
    # Shape: the supply/demand equilibrium is real — ASes that provisioned
    # more bandwidth carry correspondingly more routed volume...
    assert result.notes["node_rank_correlation"] > 0.4
    # ...fat links attract a disproportionate volume share (top 10% of
    # capacity carries >> 10% of traffic)...
    assert result.notes["fat_link_volume_share"] > 0.2
    # ...and per-link demand at least weakly follows provisioning.
    assert result.notes["link_rank_correlation"] > 0.1
    # Load concentration mirrors capacity concentration (both heavy).
    assert result.notes["carried_gini"] > 0.5
