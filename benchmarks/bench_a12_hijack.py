"""A12 — prefix hijack exposure (Ballani–Francis–Zhang)."""

from conftest import run_once

from repro.experiments import run_a12


def test_a12_hijack_exposure(benchmark, record_experiment):
    result = run_once(benchmark, run_a12, n=1200)
    record_experiment(result)
    # Shape: capture is monotone in the attacker's hierarchy position...
    assert (
        result.notes["tier1_capture"]
        > result.notes["mid_capture"]
        > result.notes["stub_capture"]
    )
    # ...a tier-1 attacker poisons the majority of the internet...
    assert result.notes["tier1_capture"] > 0.5
    # ...a stub attacker poisons almost nobody...
    assert result.notes["stub_capture"] < 0.15
    # ...and the victim's customer cone stays overwhelmingly loyal.
    assert result.notes["victim_cone_loyalty"] > 0.85
