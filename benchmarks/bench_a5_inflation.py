"""A5 — policy path inflation (valley-free vs shortest paths)."""

from conftest import run_once

from repro.experiments import run_a5


def test_a5_path_inflation(benchmark, record_experiment):
    result = run_once(benchmark, run_a5, n=1500, num_destinations=25)
    record_experiment(result)
    headers, rows = result.tables["inflation summary"]
    for row in rows:
        name, mean_shortest, mean_policy, mean_extra, inflated, unreachable = row
        # Shape: policy never shortens paths, inflates a minority of pairs
        # by well under a hop on average, and strands almost nobody.
        assert mean_policy >= mean_shortest - 1e-9, name
        assert 0.0 <= mean_extra < 1.0, name
        assert inflated < 0.5, name
        assert unreachable < 0.1, name
    assert result.notes["reference_mean_inflation"] >= 0.0
