"""Benchmark: shared-graph transport vs per-unit regeneration.

The transport's economic case (ISSUE 9): once a topology is published,
adding a metric dimension must not re-pay generation.  The workload here
is the worst honest case for regeneration — a multi-pass, groups-split
battery over generation-heavy models (brite, albert-barabasi) at n=3000
with exact path metrics, where each pass measures one new metric group
over the same (model, seed) topologies.  Under ``transport="regenerate"``
every pass regenerates every topology; under ``transport="shared"`` the
first pass publishes snapshots into the cache-resident spool and every
later pass attaches, so generation is paid exactly once per (model, seed)
— which the run journal proves, and the floors in ``perf_floors.json``
gate (speedup >= 2x, generations per unit == 1).

Results are required to be bit-identical between transports, pass by
pass — the speedup may be hardware-bound, the values never are.
"""

import json
import time

from repro.core import METRIC_GROUPS, run_battery

MODELS = ["brite", "albert-barabasi"]
N = 3000
SEEDS = 1
JOBS = 4
# One metric group per pass: the "add a dimension later" access pattern.
PASSES = [[group] for group in METRIC_GROUPS]
# Exact paths: no sampling shortcuts at this n.
KWARGS = dict(
    n=N, seeds=SEEDS, jobs=JOBS, path_sample_threshold=N + 1000, min_tail=20
)


def _run_passes(transport, cache_dir, journal=None):
    """Run the groups-split passes under one transport; return
    (total wall seconds, per-pass summary dicts)."""
    summaries = []
    start = time.perf_counter()
    for groups in PASSES:
        battery = run_battery(
            MODELS, cache=cache_dir, groups=groups, transport=transport,
            journal=journal, **KWARGS,
        )
        assert not battery.failures
        summaries.append(
            {
                entry.model: [s.as_dict() for s in entry.summaries]
                for entry in battery.entries
            }
        )
    return time.perf_counter() - start, summaries


def test_transport_speedup(perf, record_text, tmp_path):
    journal = tmp_path / "journal.jsonl"
    regen_seconds, regen_values = _run_passes(
        "regenerate", tmp_path / "regen-cache"
    )
    shared_seconds, shared_values = _run_passes(
        "shared", tmp_path / "shared-cache", journal=journal
    )
    assert shared_values == regen_values  # bit-identical, pass by pass

    # Journal-verified generation economics: one generation per
    # (model, seed) across ALL passes, snapshot hits for the rest.
    events = [
        json.loads(line)
        for line in journal.read_text(encoding="utf-8").splitlines()
    ]
    gen_starts = [
        e for e in events
        if e["event"] == "unit_start" and e.get("kind") == "generate"
    ]
    hits = [e for e in events if e["event"] == "snapshot_hit"]
    units = len(MODELS) * SEEDS
    assert sorted(set((e["model"], e["seed"]) for e in gen_starts)) == sorted(
        (e["model"], e["seed"]) for e in gen_starts
    )
    speedup = regen_seconds / shared_seconds
    perf.params.update(models=",".join(MODELS), n=N, seeds=SEEDS, jobs=JOBS)
    perf.values["speedup"] = speedup
    perf.values["regenerate_seconds"] = regen_seconds
    perf.values["shared_seconds"] = shared_seconds
    perf.values["generations_per_unit"] = len(gen_starts) / units
    perf.values["snapshot_hits"] = len(hits)

    lines = [
        f"shared-transport speedup on a groups-split battery "
        f"({len(PASSES)} passes x {units} topologies, n={N}, jobs={JOBS}, "
        f"exact paths)",
        f"  regenerate: {regen_seconds:8.2f}s  "
        f"({len(PASSES) * units} generations)",
        f"  shared:     {shared_seconds:8.2f}s  "
        f"({len(gen_starts)} generations, {len(hits)} snapshot hits)",
        f"  speedup:    {speedup:8.2f}x",
    ]
    record_text("transport.txt", "\n".join(lines))
