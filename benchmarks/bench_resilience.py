"""Percolation-sweep shoot-out: python reference vs CSR fast path.

One run per (strategy, backend) cell on a BA(m=2) graph at n = 3000,
plus the sampled path-inflation sweep. Every timed pair is also an
oracle: the backends must return bit-identical trajectories, so a
timing run can never report a speedup for a divergent kernel. The
table goes to ``output/resilience.txt``; the acceptance floor —
median sweep speedup >= 3x — lives in ``perf_floors.json``
(``resilience-median-speedup``) and is enforced against the published
``median_speedup`` value by the perf fixture.
"""

import math
import statistics
import time

from repro.core.report import format_table
from repro.generators import BarabasiAlbertGenerator
from repro.resilience import (
    AttackStrategy,
    path_inflation_sweep,
    percolation_sweep,
)

N = 3000

SWEEP_STRATEGIES = (
    AttackStrategy.RANDOM,
    AttackStrategy.DEGREE,
    AttackStrategy.DEGREE_STATIC,
)


def _timed(fn, **kwargs):
    start = time.perf_counter()
    result = fn(**kwargs)
    return result, time.perf_counter() - start


def _trajectories_equal(a, b):
    if a.fractions_removed != b.fractions_removed:
        return False
    # Giant-fraction sweeps never hold NaN; inflation sweeps may (a step
    # that fragments the sample), and NaN must match NaN.
    xs = getattr(a, "mean_distances", None) or a.giant_fractions
    ys = getattr(b, "mean_distances", None) or b.giant_fractions
    for x, y in zip(xs, ys):
        if isinstance(x, float) and math.isnan(x):
            if not math.isnan(y):
                return False
        elif x != y:
            return False
    return True


def test_resilience_sweep_speedups(perf, record_text):
    perf.bench_id = "resilience"
    graph = BarabasiAlbertGenerator(m=2).generate(N, seed=1)
    rows = []
    speedups = {}

    for strategy in SWEEP_STRATEGIES:
        python_run, python_s = _timed(
            percolation_sweep, graph=graph, strategy=strategy, seed=2,
            backend="python",
        )
        csr_run, csr_s = _timed(
            percolation_sweep, graph=graph, strategy=strategy, seed=2,
            backend="csr",
        )
        assert _trajectories_equal(python_run, csr_run), strategy
        speedup = python_s / csr_s
        speedups[f"sweep:{strategy.value}"] = speedup
        rows.append(
            ["percolation_sweep", strategy.value, python_s, csr_s, speedup]
        )

    python_inf, python_s = _timed(
        path_inflation_sweep, graph=graph, seed=2, backend="python",
    )
    csr_inf, csr_s = _timed(
        path_inflation_sweep, graph=graph, seed=2, backend="csr",
    )
    assert _trajectories_equal(python_inf, csr_inf)
    rows.append(
        ["path_inflation_sweep", "random", python_s, csr_s, python_s / csr_s]
    )

    table = format_table(
        ["kernel", "strategy", "python s", "csr s", "speedup"],
        rows,
        title=f"resilience kernels: python vs csr (BA m=2, n={N}, seed=2)",
    )
    median = statistics.median(speedups.values())
    summary = (
        f"median percolation-sweep speedup across {len(speedups)} strategies"
        f" at n={N}: {median:.2f}x"
    )
    print()
    print(table)
    print(summary)
    record_text("resilience.txt", table + "\n" + summary)
    perf.params["n"] = N
    perf.values["median_speedup"] = median
