"""F8 — shortest-path-length distribution figure."""

from conftest import run_once

from repro.experiments import run_f8


def test_f8_path_lengths(benchmark, record_experiment):
    result = run_once(benchmark, run_f8, n=1500, max_sources=250, seed=7)
    record_experiment(result)
    headers, rows = result.tables["path statistics"]
    mean_l = {row[0]: row[1] for row in rows}
    # Shape: small world everywhere except geometric Waxman, which
    # stretches paths without hub shortcuts.
    assert 2.5 < result.notes["reference_mean_path"] < 4.5
    assert mean_l["serrano"] < 4.5
    assert mean_l["glp"] < 5.0
    assert result.notes["waxman_vs_reference_path_ratio"] > 1.2
