"""A3 — attack and failure tolerance (Albert–Jeong–Barabási)."""

import math

from conftest import run_once

from repro.experiments import run_a3


def test_a3_attack_tolerance(benchmark, record_experiment):
    result = run_once(benchmark, run_a3, n=1200, steps=15)
    record_experiment(result)
    headers, rows = result.tables["tolerance summary"]
    by_model = {row[0]: row for row in rows}
    for name, row in by_model.items():
        random_survival, attack_survival = row[1], row[2]
        random_critical, attack_critical = row[3], row[4]
        # Shape: random failure never collapses the giant within the sweep...
        assert math.isnan(random_critical), name
        assert random_survival > 0.15, name
        # ...targeted attack destroys every topology well before 50%.
        assert attack_survival < 0.05, name
        assert attack_critical < 0.45, name
    # Hub-dominated maps collapse earlier under attack than ER.
    assert by_model["reference"][4] < by_model["erdos-renyi"][4]
    assert by_model["serrano"][4] < by_model["erdos-renyi"][4]
