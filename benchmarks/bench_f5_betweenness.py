"""F5 — betweenness centrality distribution figure."""

from conftest import run_once

from repro.experiments import run_f5


def test_f5_betweenness_ccdf(benchmark, record_experiment):
    result = run_once(benchmark, run_f5, n=1200, pivots=150, seed=4)
    record_experiment(result)
    headers, rows = result.tables["betweenness concentration"]
    spread = {row[0]: row[2] for row in rows}
    # Shape: hub-dominated topologies concentrate load orders of magnitude
    # above the ER baseline.
    assert result.notes["serrano_vs_er_spread_ratio"] > 3.0
    assert spread["pfp"] > spread["erdos-renyi"]
    assert spread["reference"] > spread["erdos-renyi"]
