"""A8 — attachment-kernel measurement (Jeong–Néda–Barabási)."""

from conftest import run_once

from repro.experiments import run_a8


def test_a8_attachment_kernels(benchmark, record_experiment):
    result = run_once(benchmark, run_a8, n1=1500, n2=3000)
    record_experiment(result)
    # Shape: linear-preference models measure a ≈ 1...
    assert abs(result.notes["kernel_barabasi-albert"] - 1.0) < 0.15
    assert abs(result.notes["kernel_glp"] - 1.0) < 0.2
    # ...the positive-feedback kernel measures above plain BA...
    assert result.notes["kernel_pfp"] > result.notes["kernel_barabasi-albert"]
    # ...and every measured kernel is strongly degree-dependent (a >> 0,
    # ruling out uniform attachment).
    for key, value in result.notes.items():
        assert value > 0.6, key
